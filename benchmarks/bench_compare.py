"""Perf-regression gate: compare benchmark artifacts against a baseline.

CI's bench-smoke job produces JSON artifacts (pytest-benchmark output for
the Figure 12 and ablation suites, the throughput harness's own report).
This tool distills them into a flat set of *tracked metrics* and either

* ``refresh`` — writes the metrics (with per-metric direction/tolerance/
  gating defaults) to a baseline file committed under
  ``benchmarks/baselines/``, or
* ``compare`` — reads the committed baseline and **fails (exit 1) when a
  gated metric regresses beyond its tolerance** (default 20%).

Gated metrics are deterministic optimizer counters (#solved LPs, #created
plans — the paper's own cost measures) plus the batched-vs-scalar kernel
LP ratio, all of which are machine-independent: the benchmark workloads
are derived from stable CRC32 seeds (see
:func:`repro.bench.workloads.queries_for_point`), so the same code
produces the same counters everywhere.  Wall-clock metrics (qps,
emptiness seconds) are recorded and reported but not gated by default —
shared CI runners make raw timings too noisy.

Refreshing the baseline after an intentional perf change — pass **all**
artifact families (compare iterates baseline keys only, so omitting a
family from the refresh silently removes its gates)::

    python -m pytest benchmarks/bench_fig12_chain.py \
        --benchmark-only --benchmark-json=bench-fig12-chain.json
    python -m pytest benchmarks/bench_ablation_refinements.py \
        --benchmark-only --benchmark-json=bench-ablation.json
    python benchmarks/bench_batch_throughput.py --tables 3 --queries 4 \
        --workers 1,2,4 --json bench-batch-throughput.json
    python benchmarks/bench_batch_throughput.py --topology star \
        --tables 3 --queries 4 --workers 1,2 \
        --json bench-topology-star.json
    python benchmarks/bench_anytime_ladder.py --scenario cloud \
        --json bench-anytime-cloud.json
    python benchmarks/bench_anytime_ladder.py --scenario approx \
        --json bench-anytime-approx.json
    python benchmarks/bench_lp_kernels.py --json bench-lp-kernels.json
    python benchmarks/bench_serving.py --json bench-serving.json
    python benchmarks/bench_store.py --json bench-store.json
    python benchmarks/bench_compare.py refresh \
        --baseline benchmarks/baselines/bench-smoke.json \
        --fig12 bench-fig12-chain.json --ablation bench-ablation.json \
        --throughput bench-batch-throughput.json \
        bench-topology-star.json \
        --anytime bench-anytime-cloud.json bench-anytime-approx.json \
        --lpkernels bench-lp-kernels.json \
        --serving bench-serving.json \
        --store bench-store.json

The chaos gate keeps its own baseline (its counters come from the
fixed fault schedule, not the fault-free smoke run)::

    python benchmarks/bench_chaos.py --json bench-chaos.json
    python benchmarks/bench_compare.py refresh \
        --baseline benchmarks/baselines/bench-chaos.json \
        --chaos bench-chaos.json

PRs labeled ``perf-regression-ok`` skip the CI gate (see README).
"""

from __future__ import annotations

import argparse
import json
import sys

#: Default allowed relative regression before a gated metric fails.
DEFAULT_TOLERANCE = 0.2


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _fig12_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from a pytest-benchmark Figure 12 artifact."""
    metrics: dict[str, dict] = {}
    for bench in _load(path).get("benchmarks", []):
        info = bench.get("extra_info", {})
        if "tables" not in info:
            continue
        tag = (f"fig12.{info.get('shape', '?')}"
               f".t{info['tables']}p{info.get('params', 1)}")
        metrics[f"{tag}.lps_solved"] = {
            "value": info["lps_solved"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.plans_created"] = {
            "value": info["plans_created"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.seconds"] = {
            "value": bench["stats"]["mean"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": False}
    return metrics


def _ablation_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from the refinement/kernel ablation artifact.

    Besides the per-config LP counters this derives the batched/scalar
    kernel ratios — the quantities that erode when the vectorized
    kernels silently stop being used.
    """
    metrics: dict[str, dict] = {}
    by_config: dict[str, dict] = {}
    for bench in _load(path).get("benchmarks", []):
        info = bench.get("extra_info", {})
        config = info.get("config")
        if not config:
            continue
        by_config[config] = {"lps_solved": info.get("lps_solved"),
                             "emptiness_lp_seconds":
                                 info.get("emptiness_lp_seconds"),
                             "seconds": bench["stats"]["mean"]}
        metrics[f"ablation.{config}.lps_solved"] = {
            "value": info["lps_solved"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        if info.get("emptiness_lp_seconds") is not None:
            metrics[f"ablation.{config}.emptiness_lp_seconds"] = {
                "value": info["emptiness_lp_seconds"],
                "direction": "lower",
                "tolerance": DEFAULT_TOLERANCE, "gate": False}
    batched = by_config.get("kernels_batched_kernels")
    scalar = by_config.get("kernels_scalar_kernels")
    if batched and scalar and scalar["lps_solved"]:
        # Deterministic: the fraction of the scalar path's LPs the
        # batched kernels actually solve.  Tighter tolerance — a full
        # fallback to the scalar loops moves it by well under 20%.
        metrics["ablation.kernels.lp_ratio"] = {
            "value": batched["lps_solved"] / scalar["lps_solved"],
            "direction": "lower", "tolerance": 0.08, "gate": True}
        if scalar["emptiness_lp_seconds"]:
            metrics["ablation.kernels.emptiness_seconds_ratio"] = {
                "value": (batched["emptiness_lp_seconds"]
                          / scalar["emptiness_lp_seconds"]),
                "direction": "lower",
                "tolerance": DEFAULT_TOLERANCE, "gate": False}
    return metrics


def _anytime_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from a time-to-first-guarantee ladder report.

    Per-rung cumulative LP counters and the direct-exact LP total are
    deterministic (stable CRC-seeded workloads) and gated; wall-clock
    derived values (time-to-first-guarantee, ladder overhead) are
    informational.
    """
    metrics: dict[str, dict] = {}
    report = _load(path)
    tag = (f"anytime.{report.get('scenario', '?')}"
           f".{report.get('shape', '?')}.t{report.get('num_tables', '?')}")
    for rung in report.get("rungs", []):
        rung_tag = f"{tag}.rung{rung['rung']}_a{rung['alpha']:g}"
        metrics[f"{rung_tag}.lps_solved"] = {
            "value": rung["lps_solved"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{rung_tag}.seconds"] = {
            "value": rung["seconds"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": False}
    if report.get("direct_lps"):
        metrics[f"{tag}.direct_lps"] = {
            "value": report["direct_lps"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        # Deterministic warm-start check: the whole ladder's LPs as a
        # multiple of the direct exact run's.  Erodes when cross-rung
        # warm-starting (cost memo + LP memo) silently stops working.
        metrics[f"{tag}.ladder_lp_ratio"] = {
            "value": report["ladder_lps"] / report["direct_lps"],
            "direction": "lower", "tolerance": DEFAULT_TOLERANCE,
            "gate": True}
    metrics[f"{tag}.first_guarantee_seconds"] = {
        "value": report.get("first_guarantee_seconds", 0.0),
        "direction": "lower", "tolerance": DEFAULT_TOLERANCE,
        "gate": False}
    return metrics


def _lp_kernel_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from the stacked-simplex microbenchmark JSON.

    Pivot rounds, batch occupancy and the scalar-fallback count are
    deterministic (stable CRC-seeded LPs) and gated: rounds grow when
    pivot trajectories regress, occupancy grows toward 1.0 when
    finished problems stop freezing, and any fallback means the kernel
    stopped handling its own workload.  Timings/speedups are
    informational.

    The same artifact carries the deferred-queue smoke probe
    (``"lp_queue"``): per-point queue counters plus the headline
    ``lp.median_stacked_group_size`` — the LP-weighted median size of
    the groups the stacked kernel executed, merged over the probe's
    workload points.  That metric carries an absolute ``floor`` of 8
    (the stacking crossover, ``repro.lp.solver.MIN_STACK_GROUP``):
    besides the usual relative-regression check, the compare fails
    whenever the current value sinks below the floor, however the
    baseline moves — the metric is 0.0 when the kernel never engages,
    so a queue that stops feeding the kernel fails loudly.
    """
    doc = _load(path)
    metrics: dict[str, dict] = {}
    for point in doc.get("lp_kernels", []):
        tag = (f"lpkernels.{point['n_vars']}x{point['n_constraints']}"
               f".b{point['batch']}")
        metrics[f"{tag}.rounds"] = {
            "value": point["rounds"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.occupancy"] = {
            "value": point["occupancy"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.fallbacks"] = {
            "value": point["fallbacks"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.speedup"] = {
            "value": point["speedup"], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": False}
    queue = doc.get("lp_queue")
    if queue:
        for point in queue.get("points", []):
            tag = (f"lpqueue.{point['shape']}"
                   f".t{point['num_tables']}p{point['num_params']}")
            metrics[f"{tag}.lps_solved"] = {
                "value": point["lps_solved"], "direction": "lower",
                "tolerance": DEFAULT_TOLERANCE, "gate": True}
            # Deterministic queue counters: enqueued and batch_solves
            # shrinking means the deferred path (or the stacked kernel
            # behind it) is silently disengaging.
            metrics[f"{tag}.queue_enqueued"] = {
                "value": point["queue_enqueued"], "direction": "higher",
                "tolerance": DEFAULT_TOLERANCE, "gate": True}
            metrics[f"{tag}.batch_solves"] = {
                "value": point["batch_solves"], "direction": "higher",
                "tolerance": DEFAULT_TOLERANCE, "gate": True}
            metrics[f"{tag}.median_stacked_group_size"] = {
                "value": point["median_stacked_group_size"],
                "direction": "higher", "tolerance": DEFAULT_TOLERANCE,
                "gate": True}
            # Flush-cause mix is descriptive (legitimate restructurings
            # move flushes between causes), so tracked but ungated.
            for cause in ("flush_size", "flush_demand",
                          "flush_explicit"):
                metrics[f"{tag}.{cause}"] = {
                    "value": point[cause], "direction": "lower",
                    "tolerance": DEFAULT_TOLERANCE, "gate": False}
            metrics[f"{tag}.emptiness_lp_seconds"] = {
                "value": point["emptiness_lp_seconds"],
                "direction": "lower", "tolerance": DEFAULT_TOLERANCE,
                "gate": False}
        # The headline gate: floor 8 == repro.lp.solver.MIN_STACK_GROUP
        # (the stacking crossover).
        metrics["lp.median_stacked_group_size"] = {
            "value": queue["median_stacked_group_size"],
            "direction": "higher", "tolerance": DEFAULT_TOLERANCE,
            "gate": True, "floor": 8.0}
    return metrics


def _serving_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from the serving-gateway benchmark JSON.

    The gateway's serving counters are deterministic under the bench's
    seeded open-loop workload (CRC-seeded query mix, seeded Poisson
    arrivals and tenant choice, LP-count deadline budgets), so
    admission outcomes, completion counts, deadline partials and the
    signature-routing distribution are gated: any drift means the
    admission, routing or anytime-serving logic changed behavior.
    ``dropped`` (non-429 failures) gates at an expected baseline of 0 —
    a single dropped request fails the compare outright.  Timing
    metrics (qps, client-side latency percentiles) are informational.
    """
    report = _load(path)
    tag = (f"serving.{report.get('shape', '?')}"
           f".t{report.get('num_tables', '?')}"
           f".s{report.get('shards', '?')}")
    totals = report["counters"]["totals"]
    routing = report["counters"]["routing"]
    metrics: dict[str, dict] = {}
    for name in ("admitted", "completed", "deadline_partials",
                 "streams", "events_streamed"):
        metrics[f"{tag}.{name}"] = {
            "value": totals[name], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
    for name in ("rejected_rate", "rejected_capacity", "errors"):
        metrics[f"{tag}.{name}"] = {
            "value": totals[name], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
    metrics[f"{tag}.dropped"] = {
        "value": report.get("dropped", 0), "direction": "lower",
        "tolerance": DEFAULT_TOLERANCE, "gate": True}
    metrics[f"{tag}.sticky_hits"] = {
        "value": routing["sticky_hits"], "direction": "higher",
        "tolerance": DEFAULT_TOLERANCE, "gate": True}
    metrics[f"{tag}.distinct_signatures"] = {
        "value": routing["distinct_signatures"], "direction": "lower",
        "tolerance": DEFAULT_TOLERANCE, "gate": True}
    for index, hits in enumerate(routing["shard_hits"]):
        metrics[f"{tag}.shard{index}_hits"] = {
            "value": hits, "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
    metrics[f"{tag}.qps"] = {
        "value": report["qps"], "direction": "higher",
        "tolerance": DEFAULT_TOLERANCE, "gate": False}
    for p in ("p50", "p95", "p99"):
        metrics[f"{tag}.latency_{p}_ms"] = {
            "value": report["latency_ms"][p], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": False}
    return metrics


def _store_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from the plan-set store benchmark JSON.

    The store bench replays recurring query families with drifting
    statistics (CRC-seeded, so every counter is deterministic).  Three
    absolute floors ride on top of the usual relative gates, with the
    same semantics as ``lp.median_stacked_group_size``:

    * ``store.hit_rate`` (floor 1.0) — a repeated identical query must
      *always* be an exact store hit; any miss means the persistent
      tier stopped answering;
    * ``store.lp_speedup`` (floor 2.0) — the headline warm-start claim:
      seeded runs reach their first ``alpha <= 0.05`` guarantee in at
      most half the cold run's LPs, as the geometric mean of the
      per-family speedups (the arithmetic sum ratio is tracked
      separately as ``store.lp_speedup_sum``); each family also floors
      at 1.0 — warm-starting must never make a family *slower*;
    * ``store.all_identical`` (floor 1.0) — every seeded run's final
      exact plan set is bit-identical to a cold run's; 0.0 the moment
      seeding contaminates an exact result.
    """
    report = _load(path)
    metrics: dict[str, dict] = {}
    for row in report.get("families", []):
        tag = (f"store.{row['scenario']}.{row['shape']}"
               f".t{row['num_tables']}")
        metrics[f"{tag}.cold_first_lps"] = {
            "value": row["cold_first_lps"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.warm_first_lps"] = {
            "value": row["warm_first_lps"], "direction": "lower",
            "tolerance": DEFAULT_TOLERANCE, "gate": True}
        metrics[f"{tag}.lp_speedup"] = {
            "value": row["lp_speedup"], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.0}
        for name in ("cold_first_seconds", "warm_first_seconds"):
            metrics[f"{tag}.{name}"] = {
                "value": row[name], "direction": "lower",
                "tolerance": DEFAULT_TOLERANCE, "gate": False}
    metrics["store.hit_rate"] = {
        "value": report["hit_rate"], "direction": "higher",
        "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.0}
    metrics["store.seed_hit_rate"] = {
        "value": report["seed_hit_rate"], "direction": "higher",
        "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.0}
    metrics["store.lp_speedup"] = {
        "value": report["lp_speedup"], "direction": "higher",
        "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 2.0}
    metrics["store.lp_speedup_sum"] = {
        "value": report["lp_speedup_sum"], "direction": "higher",
        "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.5}
    metrics["store.all_identical"] = {
        "value": 1.0 if report["all_identical"] else 0.0,
        "direction": "higher", "tolerance": 0.0, "gate": True,
        "floor": 1.0}
    return metrics


def _chaos_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from the chaos benchmark JSON.

    Everything here is deterministic by construction — the fault
    schedules are hit-count windows over CRC-seeded queries — and the
    gates encode the robustness contract of ``docs/robustness.md``:

    * ``chaos.http_200_rate`` (floor 1.0) — every request in every
      chaos phase completes with HTTP 200 (full, degraded or partial;
      never a dropped connection or unhandled 500);
    * ``chaos.retry_identical`` (floor 1.0, zero tolerance) — every
      recovered response is bit-identical to its fault-free reference;
    * ``chaos.dropped`` — gated at its expected baseline of 0;
    * ``chaos.faults_injected`` and the recovery counters (respawns,
      breaker opens, degraded responses, absorbed write faults, pool
      respawns, stream interrupts) floor at 1 — a chaos run that
      injects nothing, or whose recovery paths stop being exercised,
      fails instead of silently passing.
    """
    report = _load(path)
    resilience = report["resilience"]
    metrics: dict[str, dict] = {}
    metrics["chaos.http_200_rate"] = {
        "value": report["http_200_rate"], "direction": "higher",
        "tolerance": 0.0, "gate": True, "floor": 1.0}
    metrics["chaos.retry_identical"] = {
        "value": report["retry_identical"], "direction": "higher",
        "tolerance": 0.0, "gate": True, "floor": 1.0}
    metrics["chaos.dropped"] = {
        "value": report["dropped"], "direction": "lower",
        "tolerance": 0.0, "gate": True}
    for name in ("requests_total", "identity_checks",
                 "faults_injected"):
        metrics[f"chaos.{name}"] = {
            "value": report[name], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.0}
    for name in ("shard_respawns", "breaker_opens",
                 "degraded_responses"):
        metrics[f"chaos.{name}"] = {
            "value": resilience[name], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.0}
    for name in ("write_faults_absorbed", "pool_respawns",
                 "stream_interrupts"):
        metrics[f"chaos.{name}"] = {
            "value": report[name], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": True, "floor": 1.0}
    return metrics


def _throughput_metrics(path: str) -> dict[str, dict]:
    """Tracked metrics from the throughput harness JSON (informational:
    queries/second on shared runners is too noisy to gate)."""
    metrics: dict[str, dict] = {}
    report = _load(path)
    topology = report.get("topology", report.get("shape", "?"))
    for point in report.get("throughput", []):
        tag = (f"throughput.{point.get('scenario', '?')}.{topology}"
               f".t{point['num_tables']}.w{point['workers']}")
        metrics[f"{tag}.qps"] = {
            "value": point["qps"], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": False}
    for point in report.get("streaming", []):
        tag = (f"streaming.{point.get('scenario', '?')}.{topology}"
               f".t{point['num_tables']}.w{point['workers']}")
        metrics[f"{tag}.qps"] = {
            "value": point["qps"], "direction": "higher",
            "tolerance": DEFAULT_TOLERANCE, "gate": False}
    return metrics


def collect_metrics(args) -> dict[str, dict]:
    """Extract all tracked metrics from the provided artifacts."""
    metrics: dict[str, dict] = {}
    if args.fig12:
        metrics.update(_fig12_metrics(args.fig12))
    if args.ablation:
        metrics.update(_ablation_metrics(args.ablation))
    for path in args.throughput or ():
        metrics.update(_throughput_metrics(path))
    for path in args.anytime or ():
        metrics.update(_anytime_metrics(path))
    if args.lpkernels:
        metrics.update(_lp_kernel_metrics(args.lpkernels))
    if args.serving:
        metrics.update(_serving_metrics(args.serving))
    if args.store:
        metrics.update(_store_metrics(args.store))
    if args.chaos:
        metrics.update(_chaos_metrics(args.chaos))
    if not metrics:
        raise SystemExit("no tracked metrics found in the given artifacts")
    return metrics


def _regression(baseline: dict, current: float) -> float:
    """Relative movement of ``current`` in the *bad* direction (>= 0)."""
    value = baseline["value"]
    if value == 0:
        return 0.0 if current == 0 else float("inf")
    delta = ((current - value) if baseline["direction"] == "lower"
             else (value - current))
    return max(0.0, delta / abs(value))


def run_compare(args) -> int:
    baseline_doc = _load(args.baseline)
    baseline = baseline_doc.get("metrics", {})
    current = collect_metrics(args)
    failures = []
    rows = []
    for name in sorted(baseline):
        spec = baseline[name]
        if name not in current:
            # A gated metric that stops being produced would otherwise
            # silently defeat the gate (e.g. a renamed config tag).
            if spec.get("gate", False):
                failures.append((name, spec["value"], float("nan"),
                                 float("inf")))
                rows.append((name, spec["value"], None, "MISSING (gated)"))
            else:
                rows.append((name, spec["value"], None, "missing"))
            continue
        now = current[name]["value"]
        regression = _regression(spec, now)
        gated = spec.get("gate", False)
        tolerance = spec.get("tolerance", DEFAULT_TOLERANCE)
        floor = spec.get("floor")
        status = "ok"
        if regression > tolerance:
            status = "REGRESSED" if gated else "regressed (ungated)"
            if gated:
                failures.append((name, spec["value"], now, regression))
        if floor is not None and now < floor:
            # Absolute minimum, independent of the baseline value: even
            # a within-tolerance drift must not sink below the floor.
            status = f"BELOW FLOOR {floor:g}"
            if gated and not any(f[0] == name for f in failures):
                failures.append((name, spec["value"], now, regression))
        rows.append((name, spec["value"], now, status))
    width = max(len(name) for name, *_ in rows)
    print(f"{'metric':{width}}  {'baseline':>12}  {'current':>12}  status")
    for name, base_value, now, status in rows:
        now_text = "-" if now is None else f"{now:12.4g}"
        print(f"{name:{width}}  {base_value:12.4g}  {now_text:>12}  "
              f"{status}")
    if failures:
        print(f"\n{len(failures)} gated metric(s) regressed beyond "
              f"tolerance:", file=sys.stderr)
        for name, base_value, now, regression in failures:
            floor = baseline.get(name, {}).get("floor")
            if now != now:  # NaN marks a gated metric gone missing
                print(f"  {name}: {base_value:.4g} -> missing from the "
                      f"current artifacts", file=sys.stderr)
            elif floor is not None and now < floor:
                print(f"  {name}: {now:.4g} below the absolute floor "
                      f"{floor:g} (baseline {base_value:.4g})",
                      file=sys.stderr)
            else:
                print(f"  {name}: {base_value:.4g} -> {now:.4g} "
                      f"(+{regression:.0%})", file=sys.stderr)
        print("If intentional, refresh the baseline (see module "
              "docstring) or label the PR 'perf-regression-ok'.",
              file=sys.stderr)
        return 0 if args.allow_regression else 1
    print("\nall gated metrics within tolerance")
    return 0


def run_refresh(args) -> int:
    doc = {
        "generated_by": "benchmarks/bench_compare.py refresh",
        "metrics": collect_metrics(args),
    }
    with open(args.baseline, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(doc['metrics'])} tracked metrics to "
          f"{args.baseline}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=("compare", "refresh"))
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON path (read by compare, "
                             "written by refresh)")
    parser.add_argument("--fig12", default=None,
                        help="pytest-benchmark JSON of the Figure 12 "
                             "suite")
    parser.add_argument("--ablation", default=None,
                        help="pytest-benchmark JSON of the ablation "
                             "suite")
    parser.add_argument("--throughput", nargs="*", default=(),
                        help="throughput harness JSON report(s)")
    parser.add_argument("--anytime", nargs="*", default=(),
                        help="anytime-ladder (time-to-first-guarantee) "
                             "JSON report(s)")
    parser.add_argument("--lpkernels", default=None,
                        help="stacked-simplex microbenchmark JSON "
                             "(bench_lp_kernels.py --json)")
    parser.add_argument("--serving", default=None,
                        help="serving-gateway benchmark JSON "
                             "(bench_serving.py --json)")
    parser.add_argument("--store", default=None,
                        help="plan-set store benchmark JSON "
                             "(bench_store.py --json)")
    parser.add_argument("--chaos", default=None,
                        help="chaos benchmark JSON "
                             "(bench_chaos.py --json)")
    parser.add_argument("--allow-regression", action="store_true",
                        help="report regressions but exit 0 (local "
                             "experimentation)")
    args = parser.parse_args()
    if args.command == "refresh":
        return run_refresh(args)
    return run_compare(args)


if __name__ == "__main__":
    raise SystemExit(main())
