"""Batch-engine throughput: queries/sec vs. workers vs. query size.

The serving-layer benchmark the paper's Figure 12 harness has no notion
of: a fixed list of distinct random queries is optimized by the
:class:`repro.service.BatchOptimizer` at several worker counts, and
sustained queries/second is reported per point.  On multi-core hardware
the 4-worker point is expected to clear 2x the single-process baseline
(PWL-RRPA is CPU-bound pure Python, so worker processes scale with
physical cores; a single-core container shows no speedup).

Run under pytest-benchmark::

    pytest benchmarks/bench_batch_throughput.py --benchmark-only

or standalone (prints the speedup table, optionally dumps JSON)::

    python benchmarks/bench_batch_throughput.py --queries 8 --workers 1,2,4
"""

from __future__ import annotations

import argparse
import json
import os

import pytest

from repro.bench import (format_throughput_table, run_batch_throughput)

#: Tiny sweep used by the pytest entry points (CI smoke friendly).
SMOKE_QUERIES = 4
SMOKE_TABLES = 3


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_batch_throughput_chain(benchmark, workers):
    def run():
        return run_batch_throughput(
            num_tables=SMOKE_TABLES, shape="chain",
            num_queries=SMOKE_QUERIES, workers_list=(workers,))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    (point,) = points
    assert point.failures == 0
    benchmark.extra_info.update(point.as_dict())


def test_batch_beats_or_matches_reoptimization(benchmark):
    """Warm-start sanity: a fully warm batch is near-instant."""
    from repro.query import QueryGenerator
    from repro.service import BatchOptimizer, BatchOptions

    queries = [QueryGenerator(seed=s).generate(SMOKE_TABLES, "chain", 1)
               for s in range(SMOKE_QUERIES)]
    optimizer = BatchOptimizer(BatchOptions(workers=0))
    optimizer.optimize_batch(queries)  # populate the warm-start cache

    def warm():
        return optimizer.optimize_batch(queries)

    items = benchmark.pedantic(warm, rounds=1, iterations=1)
    assert all(item.status == "cached" for item in items)


def _workers_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(w) for w in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated worker counts, got {text!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, nargs="+", default=[3, 4],
                        help="query sizes (tables per query) to sweep")
    parser.add_argument("--shape", default="chain",
                        choices=("chain", "star", "cycle", "clique"))
    parser.add_argument("--queries", type=int, default=8,
                        help="distinct queries per sweep point")
    parser.add_argument("--workers", default=(1, 2, 4),
                        type=_workers_list,
                        help="comma-separated worker counts")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write raw points as JSON to this path")
    args = parser.parse_args()
    workers = args.workers

    points = []
    for num_tables in args.tables:
        points.extend(run_batch_throughput(
            num_tables=num_tables, shape=args.shape,
            num_queries=args.queries, workers_list=workers))
    print(format_throughput_table(points))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump([p.as_dict() for p in points], handle, indent=2)
        print(f"\nwrote {os.path.abspath(args.json_path)}")


if __name__ == "__main__":
    main()
