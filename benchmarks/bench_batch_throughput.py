"""Serving-layer throughput: batch, streaming, and pool-regime sweeps.

The paper's Figure 12 harness has no notion of a serving layer; this
benchmark measures three aspects of it, under any registered scenario
(``--scenario cloud`` / ``approx``):

* **batch throughput** — a fixed list of distinct random queries is
  optimized by an :class:`repro.api.OptimizerSession` at several worker
  counts; sustained queries/second is reported per point.  On multi-core
  hardware the 4-worker point is expected to clear 2x the single-process
  baseline (PWL-RRPA is CPU-bound pure Python, so worker processes scale
  with physical cores; a single-core container shows no speedup);
* **pool regimes** — the same sequence of batches run with a fresh
  session per batch (the legacy cold-pool regime that paid worker
  start-up per batch) vs. one persistent session pool; both rates land
  in the JSON report;
* **streaming** (``--streaming``) — results consumed via
  ``session.as_completed`` as they finish, additionally reporting
  time-to-first-result.

Run under pytest-benchmark::

    pytest benchmarks/bench_batch_throughput.py --benchmark-only

or standalone (prints the tables, optionally dumps JSON)::

    python benchmarks/bench_batch_throughput.py --queries 8 --workers 1,2,4
    python benchmarks/bench_batch_throughput.py --streaming --scenario approx
"""

from __future__ import annotations

import argparse
import json
import os

import pytest

from repro.bench import (format_pool_comparison, format_streaming_table,
                         format_throughput_table, run_batch_throughput,
                         run_pool_comparison, run_streaming_throughput)

#: Tiny sweep used by the pytest entry points (CI smoke friendly).
SMOKE_QUERIES = 4
SMOKE_TABLES = 3


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_batch_throughput_chain(benchmark, workers):
    def run():
        return run_batch_throughput(
            num_tables=SMOKE_TABLES, shape="chain",
            num_queries=SMOKE_QUERIES, workers_list=(workers,))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    (point,) = points
    assert point.failures == 0
    benchmark.extra_info.update(point.as_dict())


@pytest.mark.parametrize("topology", ["star", "cycle", "clique"])
def test_batch_throughput_topologies(benchmark, topology):
    """The sweep beyond chains: every non-chain join-graph topology."""
    def run():
        return run_batch_throughput(
            num_tables=SMOKE_TABLES, shape=topology,
            num_queries=SMOKE_QUERIES, workers_list=(1,))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    (point,) = points
    assert point.failures == 0
    assert point.shape == topology
    benchmark.extra_info.update(point.as_dict())


@pytest.mark.parametrize("scenario", ["cloud", "approx"])
def test_streaming_throughput(benchmark, scenario):
    def run():
        return run_streaming_throughput(
            num_tables=SMOKE_TABLES, shape="chain",
            num_queries=SMOKE_QUERIES, workers=0, scenario=scenario)

    point = benchmark.pedantic(run, rounds=1, iterations=1)
    assert point.failures == 0
    assert 0 < point.first_result_seconds <= point.seconds
    benchmark.extra_info.update(point.as_dict())


def test_persistent_pool_beats_or_matches_cold(benchmark):
    """The persistent pool never pays more spawn overhead than cold."""
    def run():
        return run_pool_comparison(
            num_tables=2, shape="chain", num_queries=2, workers=2,
            batches=2)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    by_pool = {p.pool: p for p in points}
    assert by_pool["cold"].failures == 0
    assert by_pool["persistent"].failures == 0
    benchmark.extra_info.update(
        {p.pool: p.as_dict() for p in points})


def test_batch_beats_or_matches_reoptimization(benchmark):
    """Warm-start sanity: a fully warm batch is near-instant."""
    from repro.api import OptimizerSession
    from repro.query import QueryGenerator

    queries = [QueryGenerator(seed=s).generate(SMOKE_TABLES, "chain", 1)
               for s in range(SMOKE_QUERIES)]
    session = OptimizerSession("cloud", workers=0)
    session.map(queries)  # populate the warm-start cache

    def warm():
        return session.map(queries)

    items = benchmark.pedantic(warm, rounds=1, iterations=1)
    session.close()
    assert all(item.status == "cached" for item in items)


def _workers_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(w) for w in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated worker counts, got {text!r}") from exc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, nargs="+", default=[3, 4],
                        help="query sizes (tables per query) to sweep")
    parser.add_argument("--topology", "--shape", dest="topology",
                        default="chain",
                        choices=("chain", "star", "cycle", "clique"),
                        help="join graph topology of the generated "
                             "workload (--shape is a legacy alias)")
    parser.add_argument("--scenario", default="cloud",
                        help="registered scenario to optimize under "
                             "(e.g. cloud, approx)")
    parser.add_argument("--queries", type=int, default=8,
                        help="distinct queries per sweep point")
    parser.add_argument("--workers", default=(1, 2, 4),
                        type=_workers_list,
                        help="comma-separated worker counts")
    parser.add_argument("--batches", type=int, default=2,
                        help="batches for the cold-vs-persistent pool "
                             "comparison")
    parser.add_argument("--streaming", action="store_true",
                        help="measure streaming (as_completed) throughput "
                             "instead of batch mode")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the full report as JSON to this path")
    args = parser.parse_args()
    workers = args.workers

    report: dict = {"scenario": args.scenario,
                    "topology": args.topology, "shape": args.topology}
    if args.streaming:
        points = [
            run_streaming_throughput(
                num_tables=num_tables, shape=args.topology,
                num_queries=args.queries, workers=w,
                scenario=args.scenario)
            for num_tables in args.tables for w in workers]
        print(format_streaming_table(points))
        report["streaming"] = [p.as_dict() for p in points]
    else:
        points = []
        for num_tables in args.tables:
            points.extend(run_batch_throughput(
                num_tables=num_tables, shape=args.topology,
                num_queries=args.queries, workers_list=workers,
                scenario=args.scenario))
        print(format_throughput_table(points))
        report["throughput"] = [p.as_dict() for p in points]
        pool_workers = max(workers)
        if pool_workers > 1:
            comparison = run_pool_comparison(
                num_tables=min(args.tables), shape=args.topology,
                num_queries=args.queries, workers=pool_workers,
                batches=args.batches, scenario=args.scenario)
            print()
            print(format_pool_comparison(comparison))
            report["pool_comparison"] = [p.as_dict() for p in comparison]

    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote {os.path.abspath(args.json_path)}")


if __name__ == "__main__":
    main()
