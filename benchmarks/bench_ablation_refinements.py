"""Ablation: the Section 6.2 refinements of PWL-RRPA.

The paper lists three refinements that "led to significant performance
improvements in our experiments": redundant-constraint elimination,
redundant-cutout elimination, and relevance points.  This bench runs the
same query with each refinement toggled, plus both emptiness strategies
(the paper's convexity-recognition path vs. direct difference), recording
time and LP counts for EXPERIMENTS.md.

Run with::

    pytest benchmarks/bench_ablation_refinements.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench import SweepPoint
from repro.core import PWLRRPAOptions

POINT = SweepPoint(num_tables=4, shape="chain", num_params=1, resolution=2)

CONFIGS = {
    "default": PWLRRPAOptions(),
    "no_relevance_points": PWLRRPAOptions(use_relevance_points=False),
    "with_constraint_simplification": PWLRRPAOptions(
        simplify_polytopes=True),
    "with_cutout_elimination": PWLRRPAOptions(
        remove_redundant_cutouts=True, cutout_cleanup_threshold=6),
    "convexity_emptiness": PWLRRPAOptions(
        emptiness_strategy="convexity"),
    "alpha_dominance_0.25": PWLRRPAOptions(approximation_factor=0.25),
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_refinement_ablation(benchmark, record_point, config_name):
    m = record_point(benchmark, POINT, options=CONFIGS[config_name])
    benchmark.extra_info["config"] = config_name
    assert m.pareto_plans >= 1
