"""Ablation: the Section 6.2 refinements of PWL-RRPA, plus kernel modes.

The paper lists three refinements that "led to significant performance
improvements in our experiments": redundant-constraint elimination,
redundant-cutout elimination, and relevance points.  This bench runs the
same query with each refinement toggled, plus both emptiness strategies
(the paper's convexity-recognition path vs. direct difference), recording
time and LP counts for EXPERIMENTS.md.

A second axis ablates the geometry *kernels*: the batched/vectorized
emptiness, dominance and PWL-addition paths vs. the scalar
per-piece-pair loops (``REPRO_SCALAR_KERNELS=1``).  Each point records
``emptiness_lp_seconds`` — the wall time of the region-difference LP cost
center — so the benchmark's JSON artifact carries the before/after split
of the batched-kernel work.

Run with::

    pytest benchmarks/bench_ablation_refinements.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench import SweepPoint
from repro.core import PWLRRPAOptions

POINT = SweepPoint(num_tables=4, shape="chain", num_params=1, resolution=2)

CONFIGS = {
    "default": PWLRRPAOptions(),
    "no_relevance_points": PWLRRPAOptions(use_relevance_points=False),
    "with_constraint_simplification": PWLRRPAOptions(
        simplify_polytopes=True),
    "with_cutout_elimination": PWLRRPAOptions(
        remove_redundant_cutouts=True, cutout_cleanup_threshold=6),
    "convexity_emptiness": PWLRRPAOptions(
        emptiness_strategy="convexity"),
    "alpha_dominance_0.25": PWLRRPAOptions(approximation_factor=0.25),
}

#: Kernel ablation: REPRO_SCALAR_KERNELS value per configuration.
KERNELS = {"batched_kernels": "", "scalar_kernels": "1"}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_refinement_ablation(benchmark, record_point, config_name):
    m = record_point(benchmark, POINT, options=CONFIGS[config_name])
    benchmark.extra_info["config"] = config_name
    assert m.pareto_plans >= 1


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_kernel_ablation(benchmark, record_point, monkeypatch,
                         kernel_name):
    """Batched vs. scalar geometry kernels on the same query.

    Identical Pareto plan sets by construction; what differs — and what
    the JSON artifact records — is ``emptiness_lp_seconds`` and the LP
    count, the bottleneck the batched kernels shrink.
    """
    monkeypatch.setenv("REPRO_SCALAR_KERNELS", KERNELS[kernel_name])
    # No-relevance-points options route every region decision through the
    # emptiness LPs, which is exactly the cost center under ablation.
    m = record_point(benchmark, POINT,
                     options=PWLRRPAOptions(use_relevance_points=False))
    benchmark.extra_info["config"] = f"kernels_{kernel_name}"
    benchmark.extra_info["scalar_kernels"] = KERNELS[kernel_name] == "1"
    assert m.pareto_plans >= 1
    assert m.emptiness_lp_seconds > 0
