"""Tests for the LP-result memo cache (canonicalized constraint keys)."""

from __future__ import annotations

import numpy as np

from repro.lp import LinearProgramSolver, LPResultCache, LPStats


def _square(shift: float = 0.0):
    """Constraints of the unit square shifted by ``shift``, as (A, b)."""
    a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    b = np.array([1.0 + shift, 0.0, 1.0 + shift, 0.0])
    return a, b


class TestLPResultCache:
    def test_disabled_by_default(self):
        stats = LPStats()
        solver = LinearProgramSolver(stats=stats)
        a, b = _square()
        for __ in range(2):
            solver.solve(np.zeros(2), a, b)
        assert solver.cache is None
        assert stats.solved == 2
        assert stats.cache_hits == 0

    def test_identical_solves_hit(self):
        stats = LPStats()
        solver = LinearProgramSolver(stats=stats, cache_size=16)
        a, b = _square()
        first = solver.solve(np.zeros(2), a, b)
        second = solver.solve(np.zeros(2), a, b)
        assert stats.solved == 1
        assert stats.cache_hits == 1
        assert second is first

    def test_row_order_is_canonicalized(self):
        stats = LPStats()
        solver = LinearProgramSolver(stats=stats, cache_size=16)
        a, b = _square()
        solver.solve(np.zeros(2), a, b)
        perm = [2, 0, 3, 1]
        solver.solve(np.zeros(2), a[perm], b[perm])
        assert stats.solved == 1
        assert stats.cache_hits == 1

    def test_different_instances_miss(self):
        stats = LPStats()
        solver = LinearProgramSolver(stats=stats, cache_size=16)
        a, b = _square()
        solver.solve(np.zeros(2), a, b)
        a2, b2 = _square(shift=0.5)
        solver.solve(np.zeros(2), a2, b2)
        solver.solve(np.array([1.0, 0.0]), a, b)  # same set, new objective
        assert stats.solved == 3
        assert stats.cache_hits == 0

    def test_results_match_uncached(self):
        cached = LinearProgramSolver(stats=LPStats(), cache_size=16)
        plain = LinearProgramSolver(stats=LPStats())
        a, b = _square()
        c = np.array([-1.0, -2.0])
        want = plain.solve(c, a, b)
        got = cached.solve(c, a, b)
        again = cached.solve(c, a, b)
        assert got.status == want.status == again.status
        assert np.isclose(got.objective, want.objective)

    def test_lru_eviction_bounds_size(self):
        cache = LPResultCache(maxsize=2)
        solver = LinearProgramSolver(stats=LPStats(), cache_size=2)
        solver.cache = cache
        for shift in (0.0, 0.25, 0.5, 0.75):
            a, b = _square(shift)
            solver.solve(np.zeros(2), a, b)
        assert len(cache) == 2

    def test_cache_hits_merge_and_reset(self):
        first = LPStats()
        first.record_cache_hit()
        second = LPStats()
        second.merge(first)
        assert second.cache_hits == 1
        second.reset()
        assert second.cache_hits == 0
