"""Unit tests for relevance regions (Algorithm 2 data structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.geometry import (ConvexPolytope, RelevanceRegion,
                            default_relevance_points)


def unit_region(solver, with_points=False, dim=1):
    space = ConvexPolytope.unit_box(dim)
    points = default_relevance_points(space, solver) if with_points else None
    return RelevanceRegion(space, relevance_points=points)


class TestBasicLifecycle:
    def test_fresh_region_is_full_space(self, solver):
        rr = unit_region(solver)
        assert not rr.is_empty(solver)
        assert rr.contains_point([0.5])
        assert rr.num_cutouts == 0

    def test_partial_cut_keeps_region(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.4]))
        assert not rr.is_empty(solver)
        assert not rr.contains_point([0.2])
        assert rr.contains_point([0.7])

    def test_full_cover_empties(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.6]))
        rr.subtract(ConvexPolytope.box([0.5], [1.0]))
        assert rr.is_empty(solver)

    def test_universe_cut_empties_immediately(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.universe(1))
        assert rr.is_empty(solver)

    def test_duplicate_cutout_skipped(self, solver):
        rr = unit_region(solver)
        cut = ConvexPolytope.box([0.0], [0.3])
        rr.subtract(cut)
        rr.subtract(ConvexPolytope.box([0.0], [0.3]))
        assert rr.num_cutouts == 1

    def test_dimension_mismatch(self, solver):
        rr = unit_region(solver)
        with pytest.raises(DimensionMismatchError):
            rr.subtract(ConvexPolytope.unit_box(2))

    def test_incremental_matches_fresh_computation(self, solver):
        cuts = [ConvexPolytope.box([0.0], [0.3]),
                ConvexPolytope.box([0.2], [0.55]),
                ConvexPolytope.box([0.5], [0.8])]
        incremental = unit_region(solver)
        for cut in cuts:
            incremental.subtract(cut)
            incremental.is_empty(solver)  # force residual refresh
        fresh = RelevanceRegion(ConvexPolytope.unit_box(1), cutouts=cuts)
        assert incremental.is_empty(solver) == fresh.is_empty(solver)
        for x in np.linspace(0, 1, 21):
            assert incremental.contains_point([x]) == \
                fresh.contains_point([x])


class TestRelevancePoints:
    def test_points_avoid_lps(self, solver, lp_stats):
        rr = unit_region(solver, with_points=True)
        base = lp_stats.solved
        rr.subtract(ConvexPolytope.box([0.0], [0.1]))
        assert not rr.is_empty(solver)
        # Surviving points prove non-emptiness without solving LPs.
        assert lp_stats.solved == base

    def test_points_deleted_by_cutouts(self, solver):
        rr = unit_region(solver, with_points=True)
        assert rr.relevance_points
        rr.subtract(ConvexPolytope.box([0.0], [1.0]))
        assert rr.relevance_points == []

    def test_empty_after_points_exhausted(self, solver):
        rr = unit_region(solver, with_points=True)
        rr.subtract(ConvexPolytope.box([0.0], [0.5]))
        rr.subtract(ConvexPolytope.box([0.5], [1.0]))
        assert rr.is_empty(solver)

    def test_points_exhausted_but_region_alive(self, solver):
        # Points cluster in [0.08, 0.92]; cut that strip but leave edges.
        rr = unit_region(solver, with_points=True)
        rr.subtract(ConvexPolytope.box([0.05], [0.95]))
        assert rr.relevance_points == []
        assert not rr.is_empty(solver)  # [0, 0.05] survives
        assert rr.contains_point([0.02])


class TestStrategies:
    def test_convexity_strategy_detects_cover(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.6]))
        rr.subtract(ConvexPolytope.box([0.4], [1.0]))
        assert rr.is_empty(solver, strategy="convexity")

    def test_convexity_strategy_nonempty(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.3]))
        assert not rr.is_empty(solver, strategy="convexity")

    def test_convexity_conservative_on_nonconvex_union(self, solver):
        # Cutouts union to an L-shape covering nothing completely: the
        # convexity strategy must answer non-empty (it is conservative).
        rr = unit_region(solver, dim=2)
        rr.subtract(ConvexPolytope.box([0.0, 0.0], [1.0, 0.5]))
        rr.subtract(ConvexPolytope.box([0.0, 0.0], [0.5, 1.0]))
        assert not rr.is_empty(solver, strategy="convexity")
        # The difference strategy sees the remaining quarter too.
        assert not rr.is_empty(solver, strategy="difference")

    def test_unknown_strategy_rejected(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.4]))
        with pytest.raises(ValueError):
            rr.is_empty(solver, strategy="guess")


class TestMaintenance:
    def test_witness_inside_region(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.6]))
        w = rr.witness(solver)
        assert w is not None
        assert rr.contains_point(w)

    def test_witness_none_when_empty(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [1.0]))
        assert rr.witness(solver) is None

    def test_remove_redundant_cutouts(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.0], [0.5]))
        rr.subtract(ConvexPolytope.box([0.1], [0.4]))  # inside the first
        removed = rr.remove_redundant_cutouts(solver)
        assert removed == 1
        assert rr.num_cutouts == 1
        assert not rr.contains_point([0.3])
        assert rr.contains_point([0.8])

    def test_copy_is_independent(self, solver):
        rr = unit_region(solver, with_points=True)
        rr.subtract(ConvexPolytope.box([0.0], [0.3]))
        clone = rr.copy()
        clone.subtract(ConvexPolytope.box([0.3], [1.0]))
        assert clone.is_empty(solver)
        assert not rr.is_empty(solver)

    def test_to_polytopes_covers_region(self, solver):
        rr = unit_region(solver)
        rr.subtract(ConvexPolytope.box([0.4], [0.6]))
        pieces = rr.to_polytopes(solver)
        assert len(pieces) == 2
        for x in np.linspace(0, 1, 21):
            expected = rr.contains_point([x])
            got = any(p.contains_point([x]) for p in pieces)
            if 0.38 < x < 0.42 or 0.58 < x < 0.62:
                continue  # boundary tolerance
            assert expected == got

    def test_initial_pieces_seed_residual(self, solver, lp_stats):
        space = ConvexPolytope.unit_box(1)
        cells = [ConvexPolytope.box([0.0], [0.5]),
                 ConvexPolytope.box([0.5], [1.0])]
        for i, cell in enumerate(cells):
            cell.cell_tag = ("t", i)
        rr = RelevanceRegion(space, initial_pieces=cells)
        cut = ConvexPolytope.box([0.0], [0.5])
        cut.cell_tag = ("t", 0)
        cut.vertex_hint = np.array([[0.0], [0.5]])
        rr.subtract(cut)
        assert not rr.is_empty(solver)
        cut2 = ConvexPolytope.box([0.5], [1.0])
        cut2.cell_tag = ("t", 1)
        cut2.vertex_hint = np.array([[0.5], [1.0]])
        rr.subtract(cut2)
        assert rr.is_empty(solver)
