"""Enumeration sanity: subset/split counts against closed-form formulas.

Ono & Lohman give closed-form counts of the join pairs a DP optimizer
considers when avoiding Cartesian products; the paper relies on those
shapes ("optimizing chain queries is faster than optimizing star queries
when avoiding Cartesian product joins").  These tests pin our enumerator
to the known formulas.
"""

from __future__ import annotations

import pytest

from repro.core import count_considered_splits, splits, subsets_in_size_order
from repro.query import QueryGenerator


def chain(n):
    return QueryGenerator(seed=1).generate(n, "chain", 1)


def star(n):
    return QueryGenerator(seed=1).generate(n, "star", 1)


class TestSubsetCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_chain_connected_subsets(self, n):
        # Contiguous sub-chains of length >= 2: n*(n-1)/2.
        assert len(list(subsets_in_size_order(chain(n)))) == \
            n * (n - 1) // 2

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_star_connected_subsets(self, n):
        # Hub + any non-empty spoke subset of size >= 1: 2^(n-1) - 1 total
        # subsets of size >= 2 containing the hub... minus the singleton
        # hub subset: sum_{k>=1} C(n-1, k) = 2^(n-1) - 1.
        assert len(list(subsets_in_size_order(star(n)))) == \
            2 ** (n - 1) - 1 - (n - 1) + (n - 1)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_star_has_more_subsets_than_chain(self, n):
        if n <= 3:
            pytest.skip("identical counts for tiny queries")
        assert len(list(subsets_in_size_order(star(n)))) > \
            len(list(subsets_in_size_order(chain(n))))


class TestSplitCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_chain_join_pairs(self, n):
        """Ono-Lohman: a chain of n tables has (n^3 - n) / 6 unordered
        connected (csg, cmp) pairs... our unordered splits of contiguous
        ranges: each range of length L splits at L-1 positions."""
        expected = sum((length - 1) * (n - length + 1)
                       for length in range(2, n + 1))
        assert count_considered_splits(chain(n)) == expected

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_star_join_pairs(self, n):
        """A star subset {hub}+S only splits into ({hub}+S\\{s}, {s}):
        the spoke-only side must be a single table to stay connected.
        Hence C(n-1, k) subsets with k spokes contribute k splits each."""
        from math import comb
        total = sum(comb(n - 1, k) * k for k in range(1, n))
        assert count_considered_splits(star(n)) == total

    def test_all_splits_cover_subset(self):
        q = star(5)
        for subset in subsets_in_size_order(q):
            for left, right in splits(q, subset):
                assert left | right == subset
                assert left.isdisjoint(right)
