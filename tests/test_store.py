"""The persistent plan-set store: schema, lookups, robustness.

Covers the contract of :class:`repro.store.PlanSetStore` in isolation
(seeding behavior through sessions lives in ``test_store_seeding.py``):

* round trips, alpha bounds, and the coarser-never-overwrites-tighter
  write rule shared with :class:`repro.service.cache.WarmStartCache`;
* box subsumption (``covering``) and same-family nearest-neighbor
  search (``nearest``), including exclusion filters;
* schema versioning — fresh stores at the current version, in-place
  migration of a checked-in version-1 fixture, refusal of files from
  the future;
* robustness — corrupted files degrade to a cold start with a warning,
  two store instances on one WAL file interleave writes safely, and a
  file written by one process is read back by the next (the CI
  persistence leg runs this module twice against one database via
  ``REPRO_STORE_PERSIST_DB``);
* dependency hygiene — the store package imports stdlib only and the
  project grows no new runtime dependencies.
"""

from __future__ import annotations

import ast
import json
import multiprocessing
import os
import sqlite3
import threading
from pathlib import Path

import pytest

from repro import config, faults
from repro.core import encode_result
from repro.query import QueryGenerator
from repro.service.registry import get_scenario
from repro.service.signature import (family_digest, query_signature,
                                     signature_features, statistics_digest)
from repro.store import (PlanSetStore, SCHEMA_VERSION, StoreSchemaError,
                         document_box)

REPO_ROOT = Path(__file__).resolve().parent.parent
V1_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "store_v1.sql"


@pytest.fixture(scope="module")
def plan_doc():
    """A real exact plan-set document (small query, fast to produce)."""
    query = QueryGenerator(seed=3).generate(num_tables=3, shape="chain",
                                            num_params=1)
    result = get_scenario("cloud").optimize(query, resolution=2)
    doc = encode_result(result)
    doc.setdefault("alpha", 0.0)
    doc.setdefault("guarantee", 1.0)
    return doc


def coarse_doc(doc, alpha):
    """The same document tagged at a coarser alpha."""
    out = dict(doc)
    out["alpha"] = alpha
    out["guarantee"] = (1.0 + alpha) ** 3
    return out


class TestRoundTrip:
    def test_fresh_store_is_current_version(self):
        with PlanSetStore() as store:
            assert store.schema_version() == SCHEMA_VERSION
            assert len(store) == 0

    def test_put_get_round_trip(self, plan_doc):
        with PlanSetStore() as store:
            assert store.put("sig-a", plan_doc)
            assert store.get("sig-a") == plan_doc
            assert store.get("sig-missing") is None
            assert len(store) == 1
            assert store.counters.exact_hits == 1
            assert store.counters.misses == 1

    def test_get_respects_max_alpha(self, plan_doc):
        with PlanSetStore() as store:
            store.put("sig-a", coarse_doc(plan_doc, 0.2))
            assert store.get("sig-a", max_alpha=0.05) is None
            assert store.get("sig-a", max_alpha=0.2) is not None
            assert store.get("sig-a", max_alpha=0.5) is not None

    def test_coarser_never_overwrites_tighter(self, plan_doc):
        with PlanSetStore() as store:
            assert store.put("sig-a", plan_doc)  # exact
            assert not store.put("sig-a", coarse_doc(plan_doc, 0.2))
            assert store.get("sig-a")["alpha"] == 0.0
            assert store.counters.puts_rejected_coarser == 1

    def test_tighter_replaces_coarser(self, plan_doc):
        with PlanSetStore() as store:
            assert store.put("sig-a", coarse_doc(plan_doc, 0.5))
            assert store.put("sig-a", coarse_doc(plan_doc, 0.2))
            assert store.put("sig-a", plan_doc)
            assert store.get("sig-a")["alpha"] == 0.0
            assert len(store) == 1

    def test_closed_store_raises(self, plan_doc):
        store = PlanSetStore()
        store.close()
        assert store.closed
        store.close()  # idempotent
        with pytest.raises(StoreSchemaError):
            store.get("sig-a")

    def test_snapshot_shape(self, plan_doc):
        with PlanSetStore() as store:
            store.put("sig-a", plan_doc)
            snap = store.snapshot()
        assert snap["entries"] == 1
        assert snap["puts"] == 1
        assert snap["schema_version"] == SCHEMA_VERSION
        for key in ("exact_hits", "misses", "near_hits", "nn_queries",
                    "covering_queries", "puts_rejected_coarser",
                    "migrations", "corruption_recoveries"):
            assert key in snap


class TestBoxSubsumption:
    def test_document_box_defaults_to_unit_interval(self):
        assert document_box({"num_params": 2, "entries": []}) == [
            (0.0, 1.0), (0.0, 1.0)]

    def test_document_box_reads_axis_aligned_constraints(self):
        doc = {"num_params": 1, "entries": [
            {"region": {"space": {"constraints": [
                {"a": [1.0], "b": 0.6},     # x <= 0.6
                {"a": [-1.0], "b": -0.2},   # x >= 0.2
            ]}}},
            {"region": {"space": {"constraints": [
                {"a": [1.0], "b": 0.9},     # x <= 0.9
                {"a": [0.3], "b": 0.15},    # x <= 0.5 (scaled)
            ]}}},
        ]}
        # Entry boxes [0.2, 0.6] and [0.0, 0.5]; the document box is
        # their union.
        box = document_box(doc)
        assert box == [(0.0, 0.6)]

    def test_covering_finds_subsuming_boxes(self, plan_doc):
        narrow = {"num_params": 1, "alpha": 0.0, "guarantee": 1.0,
                  "entries": [{"plan": {}, "region": {"space": {
                      "constraints": [{"a": [1.0], "b": 0.5}]}}}]}
        with PlanSetStore() as store:
            store.register("sig-wide", family="fam", scenario="cloud")
            store.register("sig-narrow", family="fam", scenario="cloud")
            store.put("sig-wide", plan_doc)        # box [0, 1]
            store.put("sig-narrow", narrow)        # box [0, 0.5]
            hits = store.covering([(0.2, 0.8)], family="fam")
            assert [h["signature"] for h in hits] == ["sig-wide"]
            hits = store.covering([(0.1, 0.4)], family="fam")
            assert {h["signature"] for h in hits} == {"sig-wide",
                                                     "sig-narrow"}

    def test_covering_respects_family_and_alpha(self, plan_doc):
        with PlanSetStore() as store:
            store.register("sig-a", family="fam-a", scenario="cloud")
            store.put("sig-a", coarse_doc(plan_doc, 0.2))
            assert store.covering([(0.0, 1.0)], family="fam-b") == []
            assert store.covering([(0.0, 1.0)], family="fam-a",
                                  max_alpha=0.05) == []
            assert len(store.covering([(0.0, 1.0)], family="fam-a",
                                      max_alpha=0.2)) == 1

    def test_covering_dimension_mismatch_does_not_cover(self, plan_doc):
        with PlanSetStore() as store:
            store.put("sig-a", plan_doc)  # 1 parameter dimension
            assert store.covering([(0.0, 1.0), (0.0, 1.0)]) == []


class TestNearestNeighbor:
    def seed(self, store, signature, features, doc):
        store.register(signature, family="fam", scenario="cloud",
                       stats_digest=f"stats-{signature}",
                       num_tables=3, features=features)
        assert store.put(signature, doc)

    def test_nearest_ranks_by_feature_distance(self, plan_doc):
        with PlanSetStore() as store:
            self.seed(store, "sig-close", (1.0, 2.0), plan_doc)
            self.seed(store, "sig-far", (5.0, 9.0), plan_doc)
            rows = store.nearest("fam", (1.1, 2.1), limit=2)
            assert [r["signature"] for r in rows] == ["sig-close",
                                                      "sig-far"]
            assert rows[0]["distance"] < rows[1]["distance"]
            assert rows[0]["document"] == plan_doc

    def test_nearest_excludes_self_and_same_stats(self, plan_doc):
        with PlanSetStore() as store:
            self.seed(store, "sig-a", (1.0, 2.0), plan_doc)
            self.seed(store, "sig-b", (1.5, 2.5), plan_doc)
            rows = store.nearest("fam", (1.0, 2.0),
                                 exclude_signature="sig-a")
            assert [r["signature"] for r in rows] == ["sig-b"]
            rows = store.nearest("fam", (1.0, 2.0),
                                 exclude_stats_digest="stats-sig-a")
            assert [r["signature"] for r in rows] == ["sig-b"]

    def test_nearest_requires_matching_family_and_dims(self, plan_doc):
        with PlanSetStore() as store:
            self.seed(store, "sig-a", (1.0, 2.0), plan_doc)
            assert store.nearest("other-family", (1.0, 2.0)) == []
            # Dimensionality mismatch: stored vectors don't qualify.
            assert store.nearest("fam", (1.0, 2.0, 3.0)) == []
            assert store.nearest("fam", ()) == []


class TestSchemaVersioning:
    def build_v1(self, path):
        conn = sqlite3.connect(path)
        conn.executescript(V1_FIXTURE.read_text(encoding="utf-8"))
        conn.commit()
        conn.close()

    def test_v1_fixture_migrates_in_place(self, tmp_path, plan_doc):
        path = tmp_path / "store.db"
        self.build_v1(path)
        with PlanSetStore(path) as store:
            assert store.schema_version() == SCHEMA_VERSION
            assert store.counters.migrations == 1
            # The legacy row survives and still answers exact hits.
            legacy = store.get("sig-legacy")
            assert legacy is not None and legacy["entries"] == []
            # The migrated database accepts current-version writes with
            # feature vectors (tables added by the migration).
            store.register("sig-new", family="fam", scenario="cloud",
                           features=(1.0, 2.0))
            assert store.put("sig-new", plan_doc)
            assert store.nearest("fam", (1.0, 2.0))
        # Reopening the migrated file applies no further migrations.
        with PlanSetStore(path) as store:
            assert store.counters.migrations == 0

    def test_future_version_refused_not_destroyed(self, tmp_path):
        path = tmp_path / "store.db"
        with PlanSetStore(path) as store:
            pass
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="newer"):
            PlanSetStore(path)
        # Refusal must not quarantine or rewrite the file.
        assert path.exists() and not (tmp_path / "store.db.corrupt"
                                      ).exists()


def _torn_put_victim(path, doc) -> None:
    """Child-process body: die mid-put, after the writes, before the
    commit (the ``store.put.torn`` failpoint's crash window)."""
    faults.install("store.put.torn:1")
    with PlanSetStore(path) as store:
        store.put("torn-victim", doc)
    os._exit(0)  # pragma: no cover - only reached if the fault missed


class TestRobustness:
    def test_torn_put_crash_recovers_with_no_lost_entries(self, tmp_path,
                                                          plan_doc):
        # Crash consistency: a writer killed hard mid-transaction must
        # cost at most its own in-flight put.  The next open rolls the
        # torn WAL transaction back silently — every prior entry
        # intact, no quarantine false-positive, no recovery counter.
        path = tmp_path / "store.db"
        with PlanSetStore(path) as store:
            for i in range(5):
                store.put(f"prior-{i}", plan_doc)

        process = multiprocessing.Process(
            target=_torn_put_victim, args=(path, plan_doc))
        process.start()
        process.join(60.0)
        assert process.exitcode == faults.FAULT_EXIT_CODE

        with PlanSetStore(path) as reopened:
            assert reopened.counters.corruption_recoveries == 0
            assert len(reopened) == 5
            for i in range(5):
                assert reopened.get(f"prior-{i}") == plan_doc
            assert reopened.get("torn-victim") is None
        assert not (tmp_path / "store.db.corrupt").exists()

    def test_corrupted_file_degrades_to_cold_start(self, tmp_path,
                                                   plan_doc):
        path = tmp_path / "store.db"
        path.write_bytes(b"this is not a sqlite database" * 64)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            store = PlanSetStore(path)
        try:
            assert store.counters.corruption_recoveries == 1
            assert len(store) == 0
            # The broken file is preserved for post-mortem ...
            assert (tmp_path / "store.db.corrupt").exists()
            # ... and the fresh store is fully usable.
            assert store.put("sig-a", plan_doc)
            assert store.get("sig-a") == plan_doc
        finally:
            store.close()

    def test_concurrent_writers_share_one_wal_file(self, tmp_path,
                                                   plan_doc):
        path = tmp_path / "store.db"
        first, second = PlanSetStore(path), PlanSetStore(path)
        errors = []

        def hammer(store, prefix):
            try:
                for i in range(25):
                    store.put(f"{prefix}-{i}", plan_doc)
                    store.get(f"{prefix}-{i}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(first, "a")),
                   threading.Thread(target=hammer, args=(second, "b"))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        first.close()
        second.close()
        with PlanSetStore(path) as check:
            assert len(check) == 50
            assert check.get("a-0") == plan_doc
            assert check.get("b-24") == plan_doc

    def test_flush_truncates_wal(self, tmp_path, plan_doc):
        path = tmp_path / "store.db"
        with PlanSetStore(path) as store:
            store.put("sig-a", plan_doc)
            store.flush()
            wal = tmp_path / "store.db-wal"
            assert not wal.exists() or wal.stat().st_size == 0


class TestPersistence:
    """A store file written by one run is warm for the next.

    Locally this round-trips through two :class:`PlanSetStore`
    instances in one process.  The CI persistence leg additionally runs
    this module *twice* with ``REPRO_STORE_PERSIST_DB`` pointing at one
    database in a job tmpdir: the first pass populates it, the second
    pass must find the entry already there (a genuine cross-process
    reopen).
    """

    QUERY_SEED = 11

    def canonical_entry(self):
        query = QueryGenerator(seed=self.QUERY_SEED).generate(
            num_tables=3, shape="chain", num_params=1)
        signature = query_signature(query, scenario="cloud")
        return query, signature

    def test_store_file_survives_reopen(self, tmp_path):
        env_path = config.value("REPRO_STORE_PERSIST_DB")
        path = env_path or str(tmp_path / "persist.db")
        query, signature = self.canonical_entry()
        store = PlanSetStore(path)
        try:
            already_warm = store.get(signature) is not None
            if already_warm:
                # Second pass (CI persistence leg): the previous run's
                # write must be visible as an exact hit.
                assert store.counters.exact_hits == 1
                return
            assert env_path is None or len(store) == 0
            result = get_scenario("cloud").optimize(query, resolution=2)
            doc = encode_result(result)
            doc.setdefault("alpha", 0.0)
            doc.setdefault("guarantee", 1.0)
            store.register(signature, family=family_digest(
                query, scenario="cloud", resolution=2, options=None),
                scenario="cloud",
                stats_digest=statistics_digest(query),
                num_tables=query.num_tables,
                features=signature_features(query))
            assert store.put(signature, doc)
        finally:
            store.close()
        with PlanSetStore(path) as reopened:
            assert reopened.get(signature) is not None


class TestDependencyHygiene:
    STDLIB_OK = {"__future__", "collections", "dataclasses", "json",
                 "math", "os", "sqlite3", "threading", "warnings"}

    def test_store_package_imports_stdlib_only(self):
        package = REPO_ROOT / "src" / "repro" / "store"
        for module in sorted(package.glob("*.py")):
            tree = ast.parse(module.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    roots = {alias.name.split(".")[0]
                             for alias in node.names}
                elif isinstance(node, ast.ImportFrom):
                    if node.level > 0:  # intra-package, fine
                        continue
                    roots = {(node.module or "").split(".")[0]}
                else:
                    continue
                foreign = roots - self.STDLIB_OK
                assert not foreign, (
                    f"{module.name} imports non-stdlib {sorted(foreign)}"
                    f" — the store tier must not grow dependencies")

    def test_no_new_runtime_dependencies(self):
        # The store rides on stdlib sqlite3: the project's runtime
        # dependency list must stay exactly numpy + scipy.
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        block = text.split("dependencies = [", 1)[1].split("]", 1)[0]
        deps = sorted(json.loads(f"[{line.strip().rstrip(',')}]")[0]
                      .split(">=")[0].strip()
                      for line in block.strip().splitlines())
        assert deps == ["numpy", "scipy"]
