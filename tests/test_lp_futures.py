"""Deferred-flush LP futures queue: semantics, accounting, equivalence.

The queue's contract is that it changes *when* LPs reach the solver but
never *what* they answer or *how* they are counted: flushes preserve
enqueue order, memo/dedupe accounting matches the eager path hit for
hit, and whole optimization runs produce bit-identical plan sets and LP
counters whether dispatch is deferred (``REPRO_DEFERRED_LP=1``, the
default), eager (``=0``) or fully scalar (``REPRO_SCALAR_KERNELS=1``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.lp.futures as futures_mod
from repro.core import encode_result
from repro.core.stats import OptimizerStats
from repro.geometry import (ConvexPolytope, RelevanceRegion,
                            chebyshev_many, chebyshev_many_deferred,
                            emptiness_many, emptiness_many_deferred,
                            has_interior_many, has_interior_many_deferred,
                            regions_empty_many)
from repro.lp import LinearProgramSolver, LPStats
from repro.query import QueryGenerator
from repro.service.registry import get_scenario


def _problems(count: int, n: int = 3, m: int = 6, seed: int = 0,
              shapes: int = 1) -> list[tuple]:
    """Random feasible LPs spread over ``shapes`` distinct row counts."""
    rng = np.random.default_rng(seed)
    out = []
    for index in range(count):
        rows = m + index % shapes
        a = rng.normal(size=(rows, n))
        anchor = rng.uniform(-1, 1, size=n)
        b = a @ anchor + rng.uniform(0.1, 2.0, size=rows)
        out.append((rng.normal(size=n), a, b, None))
    return out


def _fresh_solver(cache_size: int = 64) -> LinearProgramSolver:
    return LinearProgramSolver(stats=LPStats(), backend="simplex",
                               cache_size=cache_size)


def _exactly_equal(got, want) -> bool:
    if got.status != want.status:
        return False
    if got.status != "optimal":
        return True
    return bool((got.x == want.x).all()) and got.objective == want.objective


class TestQueueFlushSemantics:
    def test_result_matches_eager_solve(self):
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        problems = _problems(5)
        futures = [queue.enqueue(*problem, purpose="unit")
                   for problem in problems]
        assert len(queue) == len(problems)
        eager = _fresh_solver()
        for problem, future in zip(problems, futures):
            want = eager.solve(*problem, purpose="unit")
            assert _exactly_equal(future.result(), want)

    def test_demand_flushes_whole_prekey_group_only(self):
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        same = [queue.enqueue(*problem, purpose="unit")
                for problem in _problems(3, m=6)]
        other = [queue.enqueue(*problem, purpose="unit")
                 for problem in _problems(2, m=9, seed=5)]
        assert len(queue) == 5
        same[0].result()
        # The demanded future's whole stacking group resolved...
        assert all(future.done() for future in same)
        # ...while the other group keeps accumulating.
        assert not any(future.done() for future in other)
        assert len(queue) == 2
        assert solver.stats.queue_flush_demand == 1

    def test_size_trigger_flushes_one_bucket(self, monkeypatch):
        monkeypatch.setattr(futures_mod, "QUEUE_FLUSH_SIZE", 3)
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        strays = [queue.enqueue(*problem, purpose="unit")
                  for problem in _problems(2, m=9, seed=5)]
        futures = [queue.enqueue(*problem, purpose="unit")
                   for problem in _problems(3, m=6)]
        assert all(future.done() for future in futures)
        assert not any(future.done() for future in strays)
        assert solver.stats.queue_flush_size == 1
        assert solver.stats.queue_flush_demand == 0
        assert solver.stats.queue_enqueued == 5

    def test_explicit_flush_drains_everything(self):
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        futures = [queue.enqueue(*problem, purpose="unit")
                   for problem in _problems(2, m=6)]
        futures += [queue.enqueue(*problem, purpose="unit")
                    for problem in _problems(2, m=9, seed=5)]
        queue.flush()
        assert all(future.done() for future in futures)
        assert len(queue) == 0
        assert solver.stats.queue_flush_explicit == 1
        # Flushing an empty queue records nothing.
        queue.flush()
        assert solver.stats.queue_flush_explicit == 1

    def test_flush_ordering_deterministic(self):
        """Flushes dispatch in enqueue order — results land bit-identical
        to an eager per-problem sequence regardless of demand order."""
        problems = _problems(8, shapes=2)
        eager = _fresh_solver()
        want = [eager.solve(*problem, purpose="unit")
                for problem in problems]
        for demand_order in ([7, 0, 3], [2, 6], [5]):
            solver = _fresh_solver()
            queue = solver.deferred_queue()
            futures = [queue.enqueue(*problem, purpose="unit")
                       for problem in problems]
            for index in demand_order:
                futures[index].result()
            queue.flush()
            for future, reference in zip(futures, want):
                assert _exactly_equal(future.result(), reference)

    def test_on_resolve_callback_fires_at_flush(self):
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        seen = []
        future = queue.enqueue(*_problems(1)[0], purpose="unit",
                               on_resolve=seen.append)
        assert seen == []
        queue.flush()
        assert len(seen) == 1
        assert seen[0] is future.result()


class TestQueueAccounting:
    def test_memo_dedupe_identical_to_eager(self):
        problems = _problems(6, shapes=2)
        script = problems + problems[:3] + _problems(2, seed=9)
        eager = _fresh_solver()
        for problem in script:
            eager.solve(*problem, purpose="unit")
        deferred = _fresh_solver()
        queue = deferred.deferred_queue()
        futures = [queue.enqueue(*problem, purpose="unit")
                   for problem in script]
        for future in futures:
            future.result()
        assert deferred.stats.solved == eager.stats.solved
        assert deferred.stats.cache_hits == eager.stats.cache_hits
        assert deferred.stats.by_purpose() == eager.stats.by_purpose()
        assert deferred.stats.infeasible == eager.stats.infeasible

    def test_queue_counters_recorded(self):
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        futures = [queue.enqueue(*problem, purpose="unit")
                   for problem in _problems(4)]
        futures[0].result()
        assert solver.stats.queue_enqueued == 4
        assert solver.stats.queue_flush_demand == 1

    def test_unknown_flush_cause_rejected(self):
        with pytest.raises(ValueError):
            LPStats().record_queue_flush("mystery")

    def test_median_stacked_group_size(self):
        stats = LPStats()
        assert stats.median_stacked_group_size() == 0.0
        stats.record_batch(group_size=8, solved=8, rounds=3,
                           active_rounds=20, fallbacks=0)
        stats.record_batch(group_size=24, solved=24, rounds=5,
                           active_rounds=100, fallbacks=0)
        # 8 LPs at size 8, 24 LPs at size 24: the median LP rides a 24.
        assert stats.median_stacked_group_size() == 24.0
        assert stats.stacked_group_size_histogram() == {8: 1, 24: 1}
        other = LPStats()
        other.merge(stats)
        assert other.stacked_group_size_histogram() == {8: 1, 24: 1}
        other.reset()
        assert other.median_stacked_group_size() == 0.0

    def test_optimizer_stats_summary_exposes_queue_counters(self):
        stats = OptimizerStats()
        stats.lp_stats.record_queue_enqueued(5)
        stats.lp_stats.record_queue_flush("size")
        stats.lp_stats.record_queue_flush("demand")
        stats.lp_stats.record_batch(group_size=8, solved=8, rounds=2,
                                    active_rounds=10, fallbacks=0)
        summary = stats.summary()
        assert summary["lp_queue_enqueued"] == 5
        assert summary["lp_queue_flush_size"] == 1
        assert summary["lp_queue_flush_demand"] == 1
        assert summary["lp_queue_flush_explicit"] == 0
        assert summary["lp_median_stacked_group_size"] == 8.0


class TestLazyValue:
    def test_resolved_and_map(self):
        lazy = futures_mod.LazyValue.resolved(3)
        assert lazy.ready()
        assert lazy.get() == 3
        assert lazy.map(lambda v: v * 2).get() == 6

    def test_deferred_demands_on_get(self):
        solver = _fresh_solver()
        queue = solver.deferred_queue()
        future = queue.enqueue(*_problems(1)[0], purpose="unit")
        lazy = futures_mod.LazyValue.deferred(
            future, lambda result: result.status)
        doubled = lazy.map(lambda status: status * 2)
        assert not lazy.ready()
        assert lazy.get() == "optimal"
        assert lazy.ready()
        assert doubled.get() == "optimaloptimal"


def _boxes(count: int, *, empty_every: int | None = None
           ) -> list[ConvexPolytope]:
    polys = []
    for index in range(count):
        lo = 0.1 * index
        poly = ConvexPolytope.box([lo, lo], [lo + 1.0, lo + 2.0])
        if empty_every and index % empty_every == 1:
            poly = poly.intersect(
                ConvexPolytope.box([5.0, 5.0], [6.0, 6.0]))
        polys.append(poly)
    return polys


class TestDeferredGeometryHelpers:
    def test_emptiness_matches_eager(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "1")
        eager = emptiness_many(_boxes(6, empty_every=2), _fresh_solver())
        lazies = emptiness_many_deferred(_boxes(6, empty_every=2),
                                         _fresh_solver())
        assert [lazy.get() for lazy in lazies] == eager

    def test_chebyshev_and_interior_match_eager(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "1")
        solver_a, solver_b = _fresh_solver(), _fresh_solver()
        eager = chebyshev_many(_boxes(5), solver_a)
        lazies = chebyshev_many_deferred(_boxes(5), solver_b)
        for (want_c, want_r), lazy in zip(eager, lazies):
            got_c, got_r = lazy.get()
            assert got_r == want_r
            assert (got_c == want_c).all()
        assert solver_a.stats.solved == solver_b.stats.solved
        eager_interior = has_interior_many(_boxes(5), _fresh_solver())
        lazy_interior = has_interior_many_deferred(_boxes(5),
                                                   _fresh_solver())
        assert [lazy.get() for lazy in lazy_interior] == eager_interior

    def test_callbacks_fill_instance_caches_at_flush(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "1")
        solver = _fresh_solver()
        polys = _boxes(3)
        emptiness_many_deferred(polys, solver)
        solver.deferred_queue().flush()
        # Caches were installed by the flush callbacks, without any
        # future having been demanded.
        assert [poly._empty_cache for poly in polys] == [False] * 3

    def test_pending_instance_reuses_future_across_calls(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "1")
        solver = _fresh_solver()
        poly = _boxes(1)[0]
        first = emptiness_many_deferred([poly], solver)[0]
        second = emptiness_many_deferred([poly], solver)[0]
        assert second.get() == first.get()
        # One LP total: the second call found the pending future in the
        # queue notes (the eager path would have found the instance
        # cache filled), so no duplicate and no extra cache hit.
        assert solver.stats.solved == 1
        assert solver.stats.cache_hits == 0
        # Resolved notes are purged so id() reuse cannot alias.
        assert not solver.deferred_queue().notes

    def test_disabled_mode_returns_resolved_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "0")
        lazies = emptiness_many_deferred(_boxes(3), _fresh_solver())
        assert all(lazy.ready() for lazy in lazies)
        assert [lazy.get() for lazy in lazies] == [False] * 3


class TestRegionsEmptyMany:
    def _regions(self) -> list[RelevanceRegion]:
        space = ConvexPolytope.box([0.0, 0.0], [1.0, 1.0])
        cut_lo = ConvexPolytope.box([0.0, 0.0], [0.5, 1.0])
        cut_hi = ConvexPolytope.box([0.5, 0.0], [1.0, 1.0])
        full = RelevanceRegion(space)
        full.subtract_many([cut_lo, cut_hi])  # covered: empty
        half = RelevanceRegion(space)
        half.subtract_many([cut_lo])  # right half survives
        untouched = RelevanceRegion(space)
        return [full, half, untouched]

    @pytest.mark.parametrize("mode", ["1", "0"])
    def test_matches_sequential_is_empty(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_DEFERRED_LP", mode)
        solver = _fresh_solver()
        want = [region.is_empty(solver) for region in self._regions()]
        got = regions_empty_many(self._regions(), _fresh_solver())
        assert got == want == [True, False, False]


class TestFullRunEquivalence:
    """Whole optimizations across dispatch modes, plan sets and counters."""

    @pytest.mark.parametrize("scenario,seed,num_tables,shape", [
        ("cloud", 0, 4, "chain"),
        ("cloud", 1, 3, "star"),
        ("approx", 2, 4, "chain"),
    ])
    def test_deferred_eager_scalar_identical(self, monkeypatch, scenario,
                                             seed, num_tables, shape):
        query = QueryGenerator(seed=seed).generate(num_tables, shape, 1)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = get_scenario(scenario).optimize(query)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        monkeypatch.setenv("REPRO_DEFERRED_LP", "0")
        eager = get_scenario(scenario).optimize(query)
        monkeypatch.setenv("REPRO_DEFERRED_LP", "1")
        deferred = get_scenario(scenario).optimize(query)
        deferred_doc = json.dumps(encode_result(deferred), sort_keys=True)
        assert deferred_doc == json.dumps(encode_result(eager),
                                          sort_keys=True)
        assert deferred_doc == json.dumps(encode_result(scalar),
                                          sort_keys=True)
        # Deferring is pure reordering: LP counts, memo hits and purpose
        # attribution match the eager batched path exactly.
        assert deferred.stats.lps_solved == eager.stats.lps_solved
        assert (deferred.stats.lp_stats.cache_hits
                == eager.stats.lp_stats.cache_hits)
        assert (deferred.stats.lp_stats.by_purpose()
                == eager.stats.lp_stats.by_purpose())
        assert deferred.stats.lp_queue_enqueued > 0
        assert eager.stats.lp_queue_enqueued == 0
        assert scalar.stats.lp_queue_enqueued == 0
        for counter in ("plans_created", "plans_inserted",
                        "plans_discarded_new", "plans_displaced_old",
                        "pruning_comparisons"):
            assert (getattr(deferred.stats, counter)
                    == getattr(eager.stats, counter)), counter
            assert (getattr(deferred.stats, counter)
                    == getattr(scalar.stats, counter)), counter
