"""Integration tests: Theorem 3 completeness of PWL-RRPA.

The central guarantee of the paper: RRPA "generates PPSs for arbitrary MPQ
problem instances".  These tests verify it against brute-force enumeration
of the entire plan search space on small queries: for every possible plan
``p`` and every sampled parameter vector ``x``, some kept plan must
dominate ``p`` at ``x`` — where costs are the PWL functions the optimizer
actually reasons about.

A second battery cross-validates PWL-RRPA against the generic grid
backend, and a third checks the relevance-mapping property (Section 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudCostModel
from repro.core import (GridBackend, PWLRRPA, PWLRRPAOptions, RRPA,
                        make_grid)
from repro.query import QueryGenerator

from tests.helpers import dominates, enumerate_all_plans, pwl_plan_cost_at


def optimize_pwl(query, resolution=2, **options):
    model = CloudCostModel(query, resolution=resolution)
    optimizer = PWLRRPA(options=PWLRRPAOptions(**options))
    return optimizer.optimize_with_model(query, model), model


SAMPLE_XS_1D = [np.array([x]) for x in np.linspace(0.01, 0.99, 15)]


class TestTheorem3Completeness:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("shape", ["chain", "star"])
    def test_pps_dominates_all_plans(self, seed, shape):
        query = QueryGenerator(seed=seed).generate(3, shape, 1)
        result, model = optimize_pwl(query)
        all_plans = enumerate_all_plans(query, model)
        assert len(all_plans) >= len(result.entries)
        kept = [(e.plan, e.cost) for e in result.entries]
        for plan in all_plans:
            for x in SAMPLE_XS_1D:
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(kc.evaluate(x), cost)
                           for __, kc in kept), (
                    f"plan {plan!r} undominated at {x}")

    def test_pps_with_two_params(self):
        query = QueryGenerator(seed=5).generate(3, "chain", 2)
        result, model = optimize_pwl(query, resolution=1)
        all_plans = enumerate_all_plans(query, model)
        xs = [np.array([a, b])
              for a in (0.1, 0.5, 0.9) for b in (0.1, 0.5, 0.9)]
        kept = [e.cost for e in result.entries]
        for plan in all_plans:
            for x in xs:
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(kc.evaluate(x), cost) for kc in kept)

    def test_pps_without_relevance_points(self):
        query = QueryGenerator(seed=6).generate(3, "chain", 1)
        result, model = optimize_pwl(query, use_relevance_points=False)
        all_plans = enumerate_all_plans(query, model)
        kept = [e.cost for e in result.entries]
        for plan in all_plans:
            for x in SAMPLE_XS_1D:
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(kc.evaluate(x), cost) for kc in kept)

    def test_pps_with_convexity_strategy(self):
        query = QueryGenerator(seed=7).generate(3, "chain", 1)
        result, model = optimize_pwl(query,
                                     emptiness_strategy="convexity")
        all_plans = enumerate_all_plans(query, model)
        kept = [e.cost for e in result.entries]
        for plan in all_plans:
            for x in SAMPLE_XS_1D:
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(kc.evaluate(x), cost) for kc in kept)

    def test_pps_with_all_refinements(self):
        query = QueryGenerator(seed=8).generate(3, "chain", 1)
        result, model = optimize_pwl(query, simplify_polytopes=True,
                                     remove_redundant_cutouts=True,
                                     cutout_cleanup_threshold=2)
        all_plans = enumerate_all_plans(query, model)
        kept = [e.cost for e in result.entries]
        for plan in all_plans:
            for x in SAMPLE_XS_1D:
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(kc.evaluate(x), cost) for kc in kept)


class TestRelevanceMapping:
    """The RM property: plans whose RR contains x suffice at x."""

    @pytest.mark.parametrize("seed", [10, 11])
    def test_relevant_plans_suffice(self, seed):
        query = QueryGenerator(seed=seed).generate(3, "chain", 1)
        result, model = optimize_pwl(query)
        all_plans = enumerate_all_plans(query, model)
        for x in SAMPLE_XS_1D:
            relevant = [e for e in result.entries
                        if e.region.contains_point(x)]
            assert relevant, f"nobody claims {x}"
            for plan in all_plans:
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(e.cost.evaluate(x), cost)
                           for e in relevant)


class TestGridCrossValidation:
    """PWL-RRPA and the generic grid backend agree on frontiers."""

    @pytest.mark.parametrize("seed", [20, 21])
    def test_frontier_values_match(self, seed):
        query = QueryGenerator(seed=seed).generate(3, "chain", 1)
        model = CloudCostModel(query, resolution=2)

        pwl_result = PWLRRPA().optimize_with_model(query, model)

        # Grid points on the PWL partition's vertices: there the PWL
        # approximation is exact, so both backends see identical costs.
        points = make_grid(1, points_per_axis=3)  # 0, 0.5, 1
        grid_result = RRPA(GridBackend(query, model, points=points)
                           ).optimize(query)

        for idx, x in enumerate(points):
            pwl_frontier = {
                tuple(round(v, 7) for v in sorted(
                    e.cost.evaluate(x).values()))
                for e in pwl_result.entries
                if not any(
                    dominates(o.cost.evaluate(x), e.cost.evaluate(x))
                    and not dominates(e.cost.evaluate(x),
                                      o.cost.evaluate(x))
                    for o in pwl_result.entries if o is not e)}
            grid_frontier = {
                tuple(round(v, 7) for v in sorted(
                    e.cost.evaluate_index(idx).values()))
                for e in grid_result.entries if e.region.mask[idx]}
            # Every grid-frontier cost vector is matched by a PWL plan.
            for vec in grid_frontier:
                assert any(
                    all(a <= b + 1e-6 for a, b in zip(p_vec, vec))
                    for p_vec in pwl_frontier), (
                    f"grid frontier point {vec} unmatched at x={x}")
