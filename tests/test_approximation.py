"""Tests for alpha-dominance (approximate) pruning.

The paper's companion work (citation [31]) trades plan-set size against a
bounded cost regret by pruning plans that are within a ``(1 + alpha)``
factor of an alternative on every metric.  These tests check the
dominance-region computation with relaxation and the end-to-end
guarantees: smaller plan sets, bounded regret, exactness at alpha = 0.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudCostModel
from repro.core import PWLRRPA, PWLRRPAOptions
from repro.cost import MultiObjectivePWL, SharedPartition, ParamPolynomial
from repro.geometry import ConvexPolytope
from repro.query import QueryGenerator

from tests.helpers import enumerate_all_plans, pwl_plan_cost_at


class TestAlphaDominanceRegions:
    def test_relaxed_region_grows(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        x = ParamPolynomial.variable(1, 0)
        # c1 = 1.05 everywhere; c2 = 1.0 everywhere: c2 never dominated
        # exactly, but alpha = 0.1 makes c1 alpha-dominate c2 everywhere.
        c1 = part.vector_from_polynomials(
            {"time": x * 0 + 1.05, "fees": x * 0 + 1.05})
        c2 = part.vector_from_polynomials(
            {"time": x * 0 + 1.0, "fees": x * 0 + 1.0})
        exact = c1.dominance_polytopes(c2, solver, relax=0.0)
        relaxed = c1.dominance_polytopes(c2, solver, relax=0.1)
        assert not exact
        assert relaxed
        for v in np.linspace(0, 1, 11):
            assert any(p.contains_point([v]) for p in relaxed)

    def test_zero_relax_is_exact(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        x = ParamPolynomial.variable(1, 0)
        c1 = part.vector_from_polynomials(
            {"time": x * 2.0, "fees": x * 0 + 3.0})
        c2 = part.vector_from_polynomials(
            {"time": x + 0.5, "fees": x * 0 + 2.0})
        a = c2.dominance_polytopes(c1, solver)
        b = c2.dominance_polytopes(c1, solver, relax=0.0)
        for v in np.linspace(0, 1, 21):
            assert (any(p.contains_point([v]) for p in a)
                    == any(p.contains_point([v]) for p in b))

    def test_negative_relax_rejected(self, solver):
        space = ConvexPolytope.unit_box(1)
        c = MultiObjectivePWL.constant(space, {"m": 1.0})
        with pytest.raises(ValueError):
            c.dominance_polytopes(c, solver, relax=-0.1)

    def test_general_path_relaxation(self, solver):
        space = ConvexPolytope.unit_box(1)
        c1 = MultiObjectivePWL.constant(space, {"m1": 1.2, "m2": 1.2})
        c2 = MultiObjectivePWL.constant(space, {"m1": 1.0, "m2": 1.0})
        assert not c1.dominance_polytopes(c2, solver, relax=0.1)
        assert c1.dominance_polytopes(c2, solver, relax=0.25)


class TestApproximateOptimization:
    @pytest.fixture(scope="class")
    def query(self):
        return QueryGenerator(seed=101).generate(4, "chain", 1)

    @pytest.fixture(scope="class")
    def model(self, query):
        return CloudCostModel(query, resolution=2)

    @pytest.fixture(scope="class")
    def exact(self, query, model):
        return PWLRRPA().optimize_with_model(query, model)

    @pytest.fixture(scope="class")
    def approx(self, query, model):
        options = PWLRRPAOptions(approximation_factor=0.25)
        return PWLRRPA(options=options).optimize_with_model(query, model)

    def test_plan_set_shrinks(self, exact, approx):
        assert len(approx.entries) < len(exact.entries)

    def test_regret_bounded(self, query, model, exact, approx):
        """Per-point regret of the approximate set vs. the exact set is
        bounded by (1 + alpha)^(DP levels)."""
        alpha = 0.25
        levels = query.num_tables  # pruning chains span the DP depth
        bound = (1 + alpha) ** levels
        for x in (np.array([v]) for v in np.linspace(0.05, 0.95, 9)):
            for metric in ("time", "fees"):
                best_exact = min(e.cost.evaluate(x)[metric]
                                 for e in exact.entries)
                best_approx = min(e.cost.evaluate(x)[metric]
                                  for e in approx.entries)
                assert best_approx <= best_exact * bound + 1e-9

    def test_approx_set_alpha_covers_all_plans(self, query, model,
                                               approx):
        """Every plan is (1+alpha)^levels-covered at every sample point."""
        alpha = 0.25
        bound = (1 + alpha) ** query.num_tables
        all_plans = enumerate_all_plans(query, model)
        for plan in all_plans[::7]:  # sample the space, keep test fast
            for x in (np.array([v]) for v in (0.1, 0.5, 0.9)):
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(
                    all(e.cost.evaluate(x)[m] <= cost[m] * bound + 1e-9
                        for m in cost)
                    for e in approx.entries)

    def test_invalid_option_rejected(self):
        with pytest.raises(ValueError):
            PWLRRPAOptions(approximation_factor=-0.5)
