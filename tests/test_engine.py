"""Tests for the execution engine: data generation and plan execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudCostModel
from repro.core import optimize_cloud_query
from repro.engine import (Executor, generate_database,
                          threshold_for_selectivity)
from repro.errors import PlanError
from repro.plans import (FULL_SCAN, INDEX_SEEK, PARALLEL_HASH_JOIN,
                         SINGLE_NODE_HASH_JOIN, ScanPlan, combine)
from repro.query import QueryGenerator


@pytest.fixture(scope="module")
def query():
    return QueryGenerator(seed=61).generate(3, "chain", 1)


@pytest.fixture(scope="module")
def database(query):
    return generate_database(query.catalog, seed=1)


@pytest.fixture(scope="module")
def executor(query, database):
    return Executor(query, database)


class TestDataGeneration:
    def test_cardinalities_match_catalog(self, query, database):
        for name in query.tables:
            assert database.table(name).num_rows == \
                query.catalog.table(name).cardinality

    def test_column_domains_match(self, query, database):
        for name in query.tables:
            table = query.catalog.table(name)
            for col in table.columns:
                values = database.table(name).column(col.name)
                assert values.min() >= 0
                assert values.max() < col.distinct_values

    def test_deterministic(self, query):
        a = generate_database(query.catalog, seed=5)
        b = generate_database(query.catalog, seed=5)
        for name in query.tables:
            for col in query.catalog.table(name).columns:
                assert np.array_equal(a.table(name).column(col.name),
                                      b.table(name).column(col.name))

    def test_threshold_realizes_selectivity(self, query, database):
        pred = query.parametric_predicates[0]
        for target in (0.1, 0.5, 0.9):
            threshold = threshold_for_selectivity(
                database, pred.table, pred.column, target)
            values = database.table(pred.table).column(pred.column)
            actual = float(np.mean(values < threshold))
            assert actual == pytest.approx(target, abs=0.15)

    def test_threshold_extremes(self, query, database):
        pred = query.parametric_predicates[0]
        values = database.table(pred.table).column(pred.column)
        t0 = threshold_for_selectivity(database, pred.table, pred.column,
                                       0.0)
        t1 = threshold_for_selectivity(database, pred.table, pred.column,
                                       1.0)
        assert float(np.mean(values < t0)) <= 0.05
        assert float(np.mean(values < t1)) == 1.0


class TestExecutor:
    def test_scan_row_counts(self, query, executor, database):
        pred = query.parametric_predicates[0]
        plan = ScanPlan(table=pred.table, operator=FULL_SCAN)
        result = executor.execute(plan, [0.5])
        raw = database.table(pred.table).num_rows
        assert 0 < result.num_rows <= raw
        assert result.time_hours > 0

    def test_seek_equals_scan_rows(self, query, executor):
        pred = query.parametric_predicates[0]
        scan = executor.execute(
            ScanPlan(table=pred.table, operator=FULL_SCAN), [0.4])
        seek = executor.execute(
            ScanPlan(table=pred.table, operator=INDEX_SEEK), [0.4])
        assert scan.num_rows == seek.num_rows

    def test_seek_cheaper_when_selective(self, query, executor):
        pred = query.parametric_predicates[0]
        scan = executor.execute(
            ScanPlan(table=pred.table, operator=FULL_SCAN), [0.02])
        seek = executor.execute(
            ScanPlan(table=pred.table, operator=INDEX_SEEK), [0.02])
        assert seek.time_hours < scan.time_hours

    def test_seek_without_predicate_rejected(self, query, executor):
        other = next(t for t in query.tables
                     if query.parametric_predicate_of(t) is None)
        with pytest.raises(PlanError):
            executor.execute(ScanPlan(table=other, operator=INDEX_SEEK),
                             [0.5])

    def test_join_result_semantics(self, query, executor, database):
        """Hash join output must equal the brute-force predicate join."""
        t0, t1 = query.tables[0], query.tables[1]
        plan = combine(ScanPlan(table=t0, operator=FULL_SCAN),
                       ScanPlan(table=t1, operator=FULL_SCAN),
                       SINGLE_NODE_HASH_JOIN)
        result = executor.execute(plan, [1.0])
        preds = query.join_graph.predicates_between(
            frozenset((t0,)), frozenset((t1,)))
        assert preds
        pred = preds[0]
        left_vals = database.table(pred.left_table).column(
            pred.left_column)
        right_vals = database.table(pred.right_table).column(
            pred.right_column)
        expected = sum(
            int(np.sum(right_vals == v)) for v in left_vals.tolist())
        assert result.num_rows == expected

    def test_parallel_join_same_rows_more_fees(self, query, executor):
        t0, t1 = query.tables[0], query.tables[1]
        scans = (ScanPlan(table=t0, operator=FULL_SCAN),
                 ScanPlan(table=t1, operator=FULL_SCAN))
        single = executor.execute(
            combine(*scans, SINGLE_NODE_HASH_JOIN), [0.7])
        parallel = executor.execute(
            combine(*scans, PARALLEL_HASH_JOIN), [0.7])
        assert single.num_rows == parallel.num_rows
        assert parallel.fees_usd > single.fees_usd

    def test_equivalent_plans_same_result_size(self, query, executor):
        """All Pareto plans of the query produce identical result sizes."""
        result = optimize_cloud_query(query, resolution=2)
        sizes = set()
        for entry in result.entries[:4]:
            sizes.add(executor.execute(entry.plan, [0.5]).num_rows)
        assert len(sizes) == 1


class TestCostModelAgreement:
    def test_simulated_cost_tracks_model_estimate(self, query, executor):
        """At accurate cardinalities, the simulated execution cost must be
        close to the cost model's polynomial estimate."""
        model = CloudCostModel(query, resolution=2)
        pred = query.parametric_predicates[0]
        plan = ScanPlan(table=pred.table, operator=INDEX_SEEK)
        x = [0.5]
        executed = executor.execute(plan, x)
        estimated = model.scan_cost_polynomials(plan)["time"].evaluate(x)
        assert executed.time_hours == pytest.approx(estimated, rel=0.3)

    def test_plan_ordering_preserved_for_clear_winners(self, query,
                                                       executor):
        """Where the model predicts a big gap, execution agrees on the
        direction."""
        model = CloudCostModel(query, resolution=2)
        t0, t1 = query.tables[0], query.tables[1]
        scans = (ScanPlan(table=t0, operator=FULL_SCAN),
                 ScanPlan(table=t1, operator=FULL_SCAN))
        single = combine(*scans, SINGLE_NODE_HASH_JOIN)
        parallel = combine(*scans, PARALLEL_HASH_JOIN)
        x = [0.5]
        est_gap = (model.plan_cost_polynomials(parallel)["fees"].evaluate(x)
                   - model.plan_cost_polynomials(single)["fees"].evaluate(x))
        assert est_gap > 0
        run_single = executor.execute(single, x)
        run_parallel = executor.execute(parallel, x)
        assert run_parallel.fees_usd > run_single.fees_usd
