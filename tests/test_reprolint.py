"""reprolint self-tests.

Every rule family is demonstrated on the planted-violation corpus in
``tests/fixtures/reprolint/`` by copying fixtures into temporary
mini-project trees at the path prefixes the rules are scoped to, then
asserting the exact findings.  The suite also pins the cross-artifact
invariants the project rules depend on (knob-table parity between the
runtime registry and reprolint's AST mirror, the stale-baseline
detector) and finishes with the meta-test: reprolint over the real
tree reports zero findings.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    # `tools` is a repo-root package, not an installed one.
    sys.path.insert(0, str(REPO_ROOT))

from repro import config as repro_config  # noqa: E402

from tools.reprolint import ProjectContext, all_rules, lint_file, run  # noqa: E402
from tools.reprolint.cli import main as cli_main  # noqa: E402
from tools.reprolint.engine import Suppressions  # noqa: E402
from tools.reprolint.project import knob_table_markdown  # noqa: E402
from tools.reprolint.reporters import render_json, render_text  # noqa: E402
from tools.reprolint.rules.knobs import (  # noqa: E402
    KNOB_TABLE_BEGIN, KNOB_TABLE_END)

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "reprolint"


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return tmp_path


def copy_into(tmp_path: Path, rel: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes((REPO_ROOT / rel).read_bytes())
    return target


def lint(root: Path, *rels: str, default_excludes: bool = True):
    return run([root / rel for rel in rels], root,
               project=ProjectContext(root),
               use_default_excludes=default_excludes)


def rule_ids(result) -> list[str]:
    return sorted(finding.rule for finding in result.findings)


# ---------------------------------------------------------------------------
# Rule registry


def test_registry_covers_all_six_families():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(set(ids))
    assert set(ids) == {
        "REP101", "REP102", "REP103",
        "REP201", "REP202", "REP203",
        "REP301", "REP302",
        "REP401", "REP402",
        "REP501", "REP502",
        "REP601",
    }


# ---------------------------------------------------------------------------
# REP1xx determinism


def test_rep1xx_fire_on_planted_violations(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/core/planted.py": fixture("determinism_bad.py")})
    result = lint(root, "src")
    assert rule_ids(result) == [
        "REP101", "REP102", "REP102", "REP102", "REP102", "REP103"]
    clock = [f for f in result.findings if f.rule == "REP101"]
    assert "time.time" in clock[0].message
    assert "stamp" in clock[0].message


def test_rep1xx_silent_on_compliant_code(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/core/clean.py": fixture("determinism_ok.py")})
    assert lint(root, "src").findings == []


def test_rep1xx_scoped_to_bit_identity_paths(tmp_path):
    # The same violations outside repro.core/lp/geometry/cost are fine:
    # clocks and entropy are legitimate in serving/bench code.
    root = make_tree(tmp_path, {
        "src/repro/bench/planted.py": fixture("determinism_bad.py")})
    assert lint(root, "src").findings == []


def test_rep101_wallclock_allowlist_is_site_exact(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/core/run.py": fixture("wallclock_allowlist.py")})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP101"]
    assert "_BudgetWindow.other" in result.findings[0].message
    # The identical file outside the allow-listed path loses the pass.
    other = make_tree(tmp_path / "b", {
        "src/repro/core/not_run.py": fixture("wallclock_allowlist.py")})
    assert rule_ids(lint(other, "src")) == ["REP101", "REP101"]


# ---------------------------------------------------------------------------
# REP2xx knob discipline


def test_rep201_rep202_fire_on_planted_violations(tmp_path):
    copy_into(tmp_path, "src/repro/config.py")
    root = make_tree(tmp_path, {
        "src/repro/service/planted.py": fixture("knobs_bad.py")})
    result = lint(root, "src/repro/service")
    assert rule_ids(result) == ["REP201", "REP201", "REP201", "REP202"]
    assert any("REPRO_TYPO_KNOB" in f.message for f in result.findings)


def test_rep2xx_silent_on_registry_access(tmp_path):
    copy_into(tmp_path, "src/repro/config.py")
    root = make_tree(tmp_path, {
        "src/repro/service/clean.py": fixture("knobs_ok.py")})
    assert lint(root, "src/repro/service").findings == []


def test_rep201_exempts_the_registry_module_itself(tmp_path):
    copy_into(tmp_path, "src/repro/config.py")
    result = lint(tmp_path, "src/repro/config.py")
    assert result.findings == []


def test_rep203_stale_and_missing_knob_table(tmp_path):
    copy_into(tmp_path, "src/repro/config.py")
    table = repro_config.knob_table_markdown()
    fresh = (f"# Architecture\n\n{KNOB_TABLE_BEGIN}\n"
             f"{table}\n{KNOB_TABLE_END}\n")
    root = make_tree(tmp_path, {"docs/architecture.md": fresh})
    assert lint(root, "src").findings == []

    stale = fresh.replace("REPRO_DEFERRED_LP", "REPRO_RENAMED_LP")
    make_tree(tmp_path, {"docs/architecture.md": stale})
    assert rule_ids(lint(root, "src")) == ["REP203"]

    make_tree(tmp_path, {"docs/architecture.md": "# no markers\n"})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP203"]
    assert "markers missing" in result.findings[0].message


def test_knob_table_parity_between_runtime_and_ast_mirror():
    # reprolint never imports linted code: it rebuilds the knob table
    # from the registry's AST.  Pin the two implementations together.
    registry = ProjectContext(REPO_ROOT).knob_registry
    assert registry is not None
    assert knob_table_markdown(registry) == repro_config.knob_table_markdown()


# ---------------------------------------------------------------------------
# REP3xx counter consistency

COUNTERS_MODULE = """\
from dataclasses import dataclass


@dataclass
class LPStats:
    solved: int = 0
    bogus_metric: float = 0.0
    _group_sizes: int = 0
"""


def test_rep301_undocumented_counter(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/lp/counters.py": COUNTERS_MODULE,
        "docs/counters.md": "Glossary: `solved` only.\n"})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP301"]
    assert "LPStats.bogus_metric" in result.findings[0].message

    make_tree(tmp_path, {
        "docs/counters.md": "Glossary: `solved` and `bogus_metric`.\n"})
    assert lint(root, "src").findings == []


def test_rep301_requires_standalone_token(tmp_path):
    # `lps_solved` in the doc must NOT count as documenting `solved` —
    # but `lp_stats.solved` must.
    root = make_tree(tmp_path, {
        "src/repro/lp/counters.py": COUNTERS_MODULE,
        "docs/counters.md": "`lps_solved` and `bogus_metric`.\n"})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP301"]
    assert "LPStats.solved" in result.findings[0].message

    make_tree(tmp_path, {
        "docs/counters.md": "`lp_stats.solved` and `bogus_metric`.\n"})
    assert lint(root, "src").findings == []


#: Everything the project rules cross-check, copied verbatim from the
#: real tree so the copied project starts clean.
PROJECT_ARTIFACTS = (
    "src/repro/config.py",
    "src/repro/core/stats.py",
    "src/repro/lp/counters.py",
    "src/repro/serve/counters.py",
    "src/repro/serve/router.py",
    "src/repro/store/counters.py",
    "benchmarks/bench_serving.py",
    "benchmarks/bench_store.py",
    "benchmarks/baselines/bench-smoke.json",
    "docs/counters.md",
    "docs/architecture.md",
)


def test_rep302_deliberately_staled_counter_fails_the_run(tmp_path):
    for rel in PROJECT_ARTIFACTS:
        copy_into(tmp_path, rel)
    assert lint(tmp_path).findings == []  # faithful copy: clean

    baseline = tmp_path / "benchmarks/baselines/bench-smoke.json"
    document = json.loads(baseline.read_text(encoding="utf-8"))
    document["metrics"]["store.bogus_counter"] = {"value": 1.0, "gate": True}
    # An ungated extra key is recorded-only: never a finding.
    document["metrics"]["store.bogus_seconds"] = {"value": 0.5}
    baseline.write_text(json.dumps(document), encoding="utf-8")

    result = lint(tmp_path)
    assert rule_ids(result) == ["REP302"]
    assert "store.bogus_counter" in result.findings[0].message


def test_rep302_shard_hits_resolve_via_pattern(tmp_path):
    for rel in PROJECT_ARTIFACTS:
        copy_into(tmp_path, rel)
    baseline = tmp_path / "benchmarks/baselines/bench-smoke.json"
    document = json.loads(baseline.read_text(encoding="utf-8"))
    gated = [key for key, entry in document["metrics"].items()
             if isinstance(entry, dict) and entry.get("gate")
             and "shard" in key]
    assert gated, "expected gated per-shard routing metrics in baseline"
    assert lint(tmp_path).findings == []


# ---------------------------------------------------------------------------
# REP4xx lock discipline


def test_rep401_fires_on_half_locked_attribute(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/store/planted.py": fixture("locks_bad.py")})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP401"]
    assert "self.hits" in result.findings[0].message
    assert "bump" in result.findings[0].message


def test_rep401_silent_on_consistent_locking(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/store/clean.py": fixture("locks_ok.py")})
    assert lint(root, "src").findings == []


def test_rep402_fires_on_locks_in_serve(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/serve/planted.py": fixture("serve_locks.py")})
    assert rule_ids(lint(root, "src")) == ["REP402", "REP402"]
    # The same class outside repro.serve is legitimate shared state.
    other = make_tree(tmp_path / "b", {
        "src/repro/store/planted.py": fixture("serve_locks.py")})
    assert lint(other, "src").findings == []


# ---------------------------------------------------------------------------
# REP5xx API surface


def test_rep5xx_fire_on_planted_violations(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/planted.py": fixture("api_bad.py")})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP501", "REP501", "REP501", "REP502"]
    messages = " | ".join(f.message for f in result.findings)
    assert "duplicate __all__ entry 'visible'" in messages
    assert "'ghost'" in messages
    assert "'orphan'" in messages
    assert "stacklevel" in messages


def test_rep5xx_silent_on_compliant_module(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/clean.py": fixture("api_ok.py")})
    assert lint(root, "src").findings == []


# ---------------------------------------------------------------------------
# REP6xx failure-handling discipline


def test_rep601_fires_on_swallowed_exceptions_in_serve(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/serve/planted.py": fixture("except_bad.py")})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP601", "REP601", "REP601"]
    messages = " | ".join(f.message for f in result.findings)
    assert "bare except" in messages
    assert "except Exception" in messages


def test_rep601_covers_the_service_layer_too(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/service/planted.py": fixture("except_bad.py")})
    assert rule_ids(lint(root, "src")) == ["REP601"] * 3


def test_rep601_scoped_to_the_serving_tier(tmp_path):
    # The same handlers in e.g. the store are judged by other means —
    # broad excepts there are legitimate best-effort guards.
    root = make_tree(tmp_path, {
        "src/repro/store/planted.py": fixture("except_bad.py")})
    assert lint(root, "src").findings == []


def test_rep601_silent_on_accounted_or_suppressed_handlers(tmp_path):
    # Re-raise, counter increment, justified suppression, typed
    # handler, BaseException teardown guard: all clean — and the
    # suppression counts as used (no REP001).
    root = make_tree(tmp_path, {
        "src/repro/serve/clean.py": fixture("except_ok.py")})
    assert lint(root, "src").findings == []


# ---------------------------------------------------------------------------
# Suppressions and engine mechanics


def test_suppressions_used_unused_and_malformed(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/core/planted.py": fixture("suppressions.py")})
    result = lint(root, "src")
    assert rule_ids(result) == ["REP001", "REP002"]
    unused = [f for f in result.findings if f.rule == "REP001"]
    assert "REP101" in unused[0].message  # names the stale directive


def test_suppressions_scan_multi_rule_directive():
    suppressions = Suppressions.scan(
        "x = 1  # reprolint: disable=REP101,REP402\n")
    assert suppressions.by_line == {1: {"REP101", "REP402"}}
    assert suppressions.suppresses(1, "REP402")
    assert not suppressions.suppresses(1, "REP103")
    assert suppressions.unused() == [(1, "REP101")]


def test_rep002_on_unparseable_file(tmp_path):
    root = make_tree(tmp_path, {"src/broken.py": "def broken(:\n"})
    findings = lint_file(root / "src/broken.py", root)
    assert [f.rule for f in findings] == ["REP002"]
    assert "could not parse" in findings[0].message


def test_fixture_corpus_excluded_by_default(tmp_path):
    root = make_tree(tmp_path, {
        "src/ok.py": "X = 1\n",
        "tests/fixtures/reprolint/evil.py": "Y = 2\n"})
    assert lint(root, "src", "tests").files_scanned == 1
    everything = lint(root, "src", "tests", default_excludes=False)
    assert everything.files_scanned == 2


# ---------------------------------------------------------------------------
# Reporters and CLI


def test_reporters_render_findings(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/serve/planted.py": fixture("serve_locks.py")})
    result = lint(root, "src")
    text = render_text(result)
    assert "REP402" in text and "2 finding(s)" in text
    document = json.loads(render_json(result))
    assert document["clean"] is False
    assert document["counts_by_rule"] == {"REP402": 2}
    assert document["files_scanned"] == 1

    clean = lint(make_tree(tmp_path / "b", {"src/ok.py": "X = 1\n"}), "src")
    assert "clean" in render_text(clean)
    assert json.loads(render_json(clean))["clean"] is True


def test_cli_exit_codes_and_artifact(tmp_path, capsys):
    clean_root = make_tree(tmp_path / "clean", {"src/ok.py": "X = 1\n"})
    assert cli_main([str(clean_root / "src"),
                     "--root", str(clean_root)]) == 0

    dirty_root = make_tree(tmp_path / "dirty", {
        "src/repro/serve/planted.py": fixture("serve_locks.py")})
    report = tmp_path / "report.json"
    assert cli_main([str(dirty_root / "src"), "--root", str(dirty_root),
                     "--json-output", str(report)]) == 1
    document = json.loads(report.read_text(encoding="utf-8"))
    assert document["counts_by_rule"] == {"REP402": 2}

    assert cli_main([str(tmp_path / "nope.py"),
                     "--root", str(tmp_path)]) == 2
    assert cli_main(["--root", str(tmp_path / "not-a-dir")]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "REP101" in out and "REP502" in out


# ---------------------------------------------------------------------------
# The meta-test: the real tree is clean


def test_real_tree_reports_zero_findings():
    result = run([REPO_ROOT / "src", REPO_ROOT / "tests",
                  REPO_ROOT / "benchmarks"], REPO_ROOT,
                 project=ProjectContext(REPO_ROOT))
    assert result.files_scanned > 100
    assert [f.render() for f in result.findings] == []
