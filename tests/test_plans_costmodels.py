"""Unit tests for plan trees and the two cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import ApproxCostModel
from repro.cloud import CloudCostModel, ClusterSpec, PricingModel
from repro.errors import PlanError
from repro.plans import (FULL_SCAN, INDEX_SEEK, PARALLEL_HASH_JOIN,
                         SAMPLED_SCAN_10, SINGLE_NODE_HASH_JOIN,
                         ScanPlan, combine, one_line, render_plan)
from repro.query import QueryGenerator


@pytest.fixture
def query():
    return QueryGenerator(seed=9).generate(num_tables=3, shape="chain",
                                           num_params=1)


def scan(table, op=FULL_SCAN):
    return ScanPlan(table=table, operator=op)


class TestPlanTrees:
    def test_tables_and_joins(self):
        p = combine(scan("t0"), combine(scan("t1"), scan("t2"),
                                        SINGLE_NODE_HASH_JOIN),
                    PARALLEL_HASH_JOIN)
        assert p.tables == frozenset(("t0", "t1", "t2"))
        assert p.num_joins == 2
        assert p.depth == 3

    def test_overlap_rejected(self):
        with pytest.raises(PlanError):
            combine(scan("t0"), scan("t0"), SINGLE_NODE_HASH_JOIN)

    def test_left_deep_detection(self):
        left_deep = combine(combine(scan("a"), scan("b"),
                                    SINGLE_NODE_HASH_JOIN), scan("c"),
                            SINGLE_NODE_HASH_JOIN)
        bushy = combine(combine(scan("a"), scan("b"),
                                SINGLE_NODE_HASH_JOIN),
                        combine(scan("c"), scan("d"),
                                SINGLE_NODE_HASH_JOIN),
                        SINGLE_NODE_HASH_JOIN)
        assert left_deep.is_left_deep()
        assert not bushy.is_left_deep()

    def test_signature_distinguishes_operators(self):
        a = combine(scan("a"), scan("b"), SINGLE_NODE_HASH_JOIN)
        b = combine(scan("a"), scan("b"), PARALLEL_HASH_JOIN)
        assert a.signature() != b.signature()
        assert a.signature() == combine(scan("a"), scan("b"),
                                        SINGLE_NODE_HASH_JOIN).signature()

    def test_rendering(self):
        p = combine(scan("a", INDEX_SEEK), scan("b"), PARALLEL_HASH_JOIN)
        text = render_plan(p)
        assert "parallel_hash_join" in text
        assert "index_seek" in text
        line = one_line(p)
        assert "a*" in line and "||" in line


class TestCloudCostModel:
    def test_scan_operator_availability(self, query):
        model = CloudCostModel(query, resolution=2)
        param_table = query.parametric_predicates[0].table
        assert INDEX_SEEK in model.scan_operators(param_table)
        other = next(t for t in query.tables if t != param_table)
        assert model.scan_operators(other) == (FULL_SCAN,)

    def test_full_scan_cost_constant_in_selectivity(self, query):
        model = CloudCostModel(query, resolution=2)
        param_table = query.parametric_predicates[0].table
        polys = model.scan_cost_polynomials(scan(param_table))
        assert polys["time"].degree() == 0

    def test_index_seek_grows_with_selectivity(self, query):
        model = CloudCostModel(query, resolution=2)
        param_table = query.parametric_predicates[0].table
        polys = model.scan_cost_polynomials(scan(param_table, INDEX_SEEK))
        low = polys["time"].evaluate([0.01])
        high = polys["time"].evaluate([0.99])
        assert high > low

    def test_seek_scan_crossover_exists(self, query):
        """The paper's setup: seek wins for low, scan for high selectivity."""
        model = CloudCostModel(query, resolution=2)
        param_table = query.parametric_predicates[0].table
        scan_c = model.scan_cost_polynomials(scan(param_table))["time"]
        seek_c = model.scan_cost_polynomials(
            scan(param_table, INDEX_SEEK))["time"]
        assert seek_c.evaluate([0.01]) < scan_c.evaluate([0.01])
        assert seek_c.evaluate([0.99]) > scan_c.evaluate([0.99])

    def test_seek_without_predicate_rejected(self, query):
        model = CloudCostModel(query, resolution=2)
        other = next(t for t in query.tables
                     if t != query.parametric_predicates[0].table)
        with pytest.raises(PlanError):
            model.scan_cost_polynomials(scan(other, INDEX_SEEK))

    def test_parallel_join_tradeoff(self, query):
        """Parallel join: always higher fees; faster for large inputs."""
        model = CloudCostModel(query, resolution=2)
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        single = model.join_cost_polynomials(left, right,
                                             SINGLE_NODE_HASH_JOIN)
        par = model.join_cost_polynomials(left, right, PARALLEL_HASH_JOIN)
        x = [0.9]
        assert par["fees"].evaluate(x) > single["fees"].evaluate(x)
        x_small = [0.001]
        assert par["fees"].evaluate(x_small) > single["fees"].evaluate(
            x_small)

    def test_parallel_faster_for_huge_inputs(self):
        """With enough data, the parallel join's wall clock wins."""
        gen = QueryGenerator(seed=1)
        query = gen.generate(num_tables=2, shape="chain", num_params=1)
        # Force big tables to get past the startup overhead.
        for t in query.catalog.tables.values():
            object.__setattr__(t, "cardinality", 5_000_000)
        query._cardinality_cache.clear()
        model = CloudCostModel(query, resolution=2)
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        single = model.join_cost_polynomials(left, right,
                                             SINGLE_NODE_HASH_JOIN)
        par = model.join_cost_polynomials(left, right, PARALLEL_HASH_JOIN)
        assert par["time"].evaluate([1.0]) < single["time"].evaluate([1.0])

    def test_plan_cost_polynomials_recursive_sum(self, query):
        model = CloudCostModel(query, resolution=2)
        t0, t1 = query.tables[0], query.tables[1]
        p = combine(scan(t0), scan(t1), SINGLE_NODE_HASH_JOIN)
        total = model.plan_cost_polynomials(p)
        parts = (model.scan_cost_polynomials(scan(t0))["time"]
                 + model.scan_cost_polynomials(scan(t1))["time"]
                 + model.join_cost_polynomials(frozenset((t0,)),
                                               frozenset((t1,)),
                                               SINGLE_NODE_HASH_JOIN)["time"])
        for x in (0.1, 0.5, 0.9):
            assert total["time"].evaluate([x]) == pytest.approx(
                parts.evaluate([x]))

    def test_pwl_matches_polynomials_at_grid_vertices(self, query):
        model = CloudCostModel(query, resolution=2)
        param_table = query.parametric_predicates[0].table
        plan = scan(param_table, INDEX_SEEK)
        pwl = model.scan_cost(plan)
        polys = model.scan_cost_polynomials(plan)
        for x in (0.0, 0.5, 1.0):  # grid vertices with resolution 2
            assert pwl.evaluate([x])["time"] == pytest.approx(
                polys["time"].evaluate([x]), rel=1e-9)

    def test_interpolation_linearity_identity(self, query):
        """Interpolate(sum) == sum(interpolants) on a shared partition."""
        model = CloudCostModel(query, resolution=2)
        t0, t1 = query.tables[0], query.tables[1]
        join_plan = combine(scan(t0), scan(t1), SINGLE_NODE_HASH_JOIN)
        direct = model.plan_cost(join_plan)
        accumulated = (model.scan_cost(scan(t0))
                       .add(model.scan_cost(scan(t1)))
                       .add(model.join_local_cost(
                           frozenset((t0,)), frozenset((t1,)),
                           SINGLE_NODE_HASH_JOIN)))
        for x in np.linspace(0, 1, 11):
            d = direct.evaluate([x])
            a = accumulated.evaluate([x])
            assert d["time"] == pytest.approx(a["time"], rel=1e-9)
            assert d["fees"] == pytest.approx(a["fees"], rel=1e-9)

    def test_pricing_scales_fees_only(self, query):
        cheap = CloudCostModel(query, resolution=1,
                               pricing=PricingModel(usd_per_node_hour=1.0))
        pricey = CloudCostModel(query, resolution=1,
                                pricing=PricingModel(usd_per_node_hour=2.0))
        t0 = query.tables[0]
        c = cheap.scan_cost_polynomials(scan(t0))
        p = pricey.scan_cost_polynomials(scan(t0))
        assert p["fees"].evaluate([0.5]) == pytest.approx(
            2 * c["fees"].evaluate([0.5]))
        assert p["time"].evaluate([0.5]) == pytest.approx(
            c["time"].evaluate([0.5]))

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=1)
        with pytest.raises(ValueError):
            ClusterSpec(process_hours_per_tuple=0.0)
        with pytest.raises(ValueError):
            PricingModel(usd_per_node_hour=0.0)

    def test_vector_cache(self, query):
        model = CloudCostModel(query, resolution=2)
        t0 = query.tables[0]
        assert model.scan_cost(scan(t0)) is model.scan_cost(scan(t0))


class TestApproxCostModel:
    def test_sampled_scan_tradeoff(self, query):
        model = ApproxCostModel(query, resolution=2)
        t0 = query.tables[0]
        exact = model.scan_cost_polynomials(scan(t0))
        sampled = model.scan_cost_polynomials(scan(t0, SAMPLED_SCAN_10))
        assert sampled["time"].evaluate([0.5]) < exact["time"].evaluate(
            [0.5])
        assert sampled["precision_loss"].evaluate([0.5]) > \
            exact["precision_loss"].evaluate([0.5])

    def test_joins_add_no_loss(self, query):
        model = ApproxCostModel(query, resolution=2)
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        polys = model.join_cost_polynomials(left, right,
                                            SINGLE_NODE_HASH_JOIN)
        assert polys["precision_loss"].evaluate([0.3]) == 0.0

    def test_plan_loss_is_max_over_leaves(self, query):
        model = ApproxCostModel(query, resolution=2)
        t0, t1 = query.tables[0], query.tables[1]
        p = combine(scan(t0, SAMPLED_SCAN_10), scan(t1),
                    SINGLE_NODE_HASH_JOIN)
        polys = model.plan_cost_polynomials(p)
        assert polys["precision_loss"].evaluate([0.5]) == pytest.approx(0.9)

    def test_unsupported_join_rejected(self, query):
        model = ApproxCostModel(query, resolution=2)
        with pytest.raises(PlanError):
            model.join_cost_polynomials(frozenset((query.tables[0],)),
                                        frozenset((query.tables[1],)),
                                        PARALLEL_HASH_JOIN)
