"""Tests for the greedy heuristic baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (GreedyJoinOrderer, heuristic_coverage)
from repro.cloud import CloudCostModel
from repro.core import PWLRRPA
from repro.query import QueryGenerator


@pytest.fixture(scope="module")
def query():
    return QueryGenerator(seed=51).generate(4, "chain", 1)


@pytest.fixture(scope="module")
def model(query):
    return CloudCostModel(query, resolution=2)


@pytest.fixture(scope="module")
def greedy(query, model):
    return GreedyJoinOrderer(model).optimize(query)


class TestGreedyJoinOrderer:
    def test_produces_valid_plans(self, query, greedy):
        assert greedy.plans
        for plan in greedy.plans:
            assert plan.tables == query.table_set
            assert plan.is_left_deep()

    def test_no_duplicate_plans(self, greedy):
        sigs = [p.signature() for p in greedy.plans]
        assert len(sigs) == len(set(sigs))

    def test_polynomial_plan_construction_bound(self, query, model,
                                                greedy):
        """Greedy builds O(profiles * points * n^2 * ops) plans — the
        polynomial scaling that distinguishes it from exhaustive DP."""
        n = query.num_tables
        profiles = 3  # per-metric + combined
        points = 3
        ops = len(model.join_operators())
        bound = profiles * points * (n * n * ops + n)
        assert greedy.plans_created <= bound

    def test_coverage_metric_in_unit_interval(self, query, model, greedy):
        exhaustive = PWLRRPA().optimize_with_model(query, model)
        coverage = heuristic_coverage(
            greedy, exhaustive.entries, model,
            [np.array([v]) for v in (0.1, 0.5, 0.9)])
        assert 0.0 <= coverage <= 1.0

    def test_greedy_never_beats_exhaustive(self, query, model, greedy):
        """Sanity: the heuristic cannot beat the exhaustive optimum."""
        exhaustive = PWLRRPA().optimize_with_model(query, model)
        for x in ([0.2], [0.8]):
            for name in ("time", "fees"):
                best_exhaustive = min(
                    e.cost.evaluate(x)[name] for e in exhaustive.entries)
                best_greedy = min(
                    model.plan_cost(p).evaluate(x)[name]
                    for p in greedy.plans)
                assert best_greedy >= best_exhaustive - 1e-9
