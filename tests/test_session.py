"""Tests for the unified session API (repro.api / repro.service.session).

Covers the tentpole guarantees of the OptimizerSession redesign:

* lifecycle — context-manager close is idempotent, submit after close
  raises cleanly;
* persistent pool — workers are spawned once across consecutive batches
  (the legacy engine respawned per batch);
* streaming — ``as_completed`` yields error-isolated items, ``map``
  stays deterministic;
* scenario registry — built-in ``"cloud"``/``"approx"`` resolve, custom
  registrations work, and the legacy entry points return bit-identical
  plan sets through their deprecation shims.
"""

from __future__ import annotations

import os

import pytest

from repro.api import (OptimizerSession, available_scenarios, get_scenario,
                       optimize_query, query_signature, register_scenario)
from repro.core import RRPA, PWLBackend, encode_result
from repro.cost import CLOUD_METRICS
from repro.query import QueryGenerator
from repro.service import session as session_module
from repro.service.registry import ScenarioRegistry, default_registry


def make_queries(count: int, num_tables: int = 3, seed: int = 0):
    return [QueryGenerator(seed=seed + i).generate(num_tables, "chain", 1)
            for i in range(count)]


class TestLifecycle:
    def test_context_manager_and_idempotent_close(self):
        session = OptimizerSession("cloud")
        with session as s:
            assert s is session
            assert not s.closed
        assert session.closed
        session.close()  # idempotent
        session.close()
        assert session.closed

    def test_submit_after_close_raises(self):
        session = OptimizerSession("cloud")
        session.close()
        (query,) = make_queries(1)
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(query)
        with pytest.raises(RuntimeError, match="closed"):
            list(session.as_completed([query]))
        with pytest.raises(RuntimeError, match="closed"), session:
            pass

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="available"):
            OptimizerSession("no-such-scenario")
        with OptimizerSession("cloud") as session, \
                pytest.raises(KeyError, match="available"):
            session.map(make_queries(1), scenario="no-such-scenario")

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimizerSession("cloud", workers=-1)
        with pytest.raises(ValueError):
            OptimizerSession("cloud", timeout_seconds=0)


def _pid_stamped(payload):
    """Worker stub recording the optimizing process id in the stats."""
    index, doc, stats, seconds = session_module._real_optimize_payload(
        payload)
    stats["pid"] = os.getpid()
    return index, doc, stats, seconds


class TestPersistentPool:
    def test_pool_spawned_once_across_two_batches(self, monkeypatch):
        """Regression: the legacy engine respawned its pool per batch."""
        monkeypatch.setattr(session_module, "_real_optimize_payload",
                            session_module._optimize_payload,
                            raising=False)
        monkeypatch.setattr(session_module, "_optimize_payload",
                            _pid_stamped)
        first_batch = make_queries(2, num_tables=2, seed=0)
        second_batch = make_queries(2, num_tables=2, seed=10)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as session:
            first = session.map(first_batch)
            second = session.map(second_batch)
            assert session.pool_spawns == 1
            first_pids = {item.stats["pid"] for item in first}
            second_pids = {item.stats["pid"] for item in second}
            # Same worker processes served both batches.
            assert second_pids <= first_pids

    def test_pool_results_match_serial(self):
        queries = make_queries(3, num_tables=2)
        with OptimizerSession("cloud", warm_start=False) as serial:
            a = serial.map(queries)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as pooled:
            b = pooled.map(queries)
        assert [i.index for i in b] == [0, 1, 2]
        for x, y in zip(a, b):
            assert y.status == "ok"
            assert len(x.plan_set.entries) == len(y.plan_set.entries)

    def test_lp_memo_accumulates_at_session_scope(self):
        queries = make_queries(2, num_tables=2)
        with OptimizerSession("cloud", warm_start=False) as session:
            session.map(queries)
            assert session.lp_memo is not None and len(session.lp_memo) > 0

    def test_lp_memo_handoff_seeds_pooled_session(self):
        """A serial session's memo can spawn a pooled session's workers
        warm."""
        queries = make_queries(2, num_tables=2)
        with OptimizerSession("cloud", warm_start=False) as serial:
            serial.map(queries)
            memo = serial.lp_memo
        assert len(memo.export()) > 0
        with OptimizerSession("cloud", workers=2, warm_start=False,
                              lp_memo=memo) as pooled:
            assert pooled.lp_memo is memo
            items = pooled.map(queries)
        assert all(item.ok for item in items)

    def test_broken_pool_recovers(self):
        """A hard worker crash must not poison the persistent pool."""
        queries = make_queries(2, num_tables=2)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as session:
            assert all(item.ok for item in session.map(queries))
            for process in list(session._pool._processes.values()):
                process.kill()
            # The crash may surface as error items once (isolation);
            # the session must respawn the pool and recover.
            for __ in range(3):
                items = session.map(queries)
                if all(item.ok for item in items):
                    break
            assert all(item.ok for item in items)
            assert session.pool_spawns >= 2


def _slow_leader(payload):
    """Worker stub: query 0 stalls far past any test deadline."""
    if payload[0] == 0:
        import time as _time
        _time.sleep(30.0)
    return session_module._real_optimize_payload(payload)


class TestDeadlines:
    def test_deadline_recycles_stuck_workers(self, monkeypatch):
        """A missed deadline must not leave workers burning CPU: the
        stuck worker is terminated and the pool respawns lazily."""
        monkeypatch.setattr(session_module, "_real_optimize_payload",
                            session_module._optimize_payload,
                            raising=False)
        monkeypatch.setattr(session_module, "_optimize_payload",
                            _slow_leader)
        queries = make_queries(2, num_tables=2)
        with OptimizerSession("cloud", workers=2, timeout_seconds=1.0,
                              warm_start=False) as session:
            items = session.map(queries)
            assert items[0].status == "timeout"
            assert items[1].status == "ok"
            # The stuck worker was terminated and the pool discarded.
            assert session._pool is None
            monkeypatch.setattr(session_module, "_optimize_payload",
                                session_module._real_optimize_payload)
            again = session.map(queries)
            assert [item.status for item in again] == ["ok", "ok"]
            assert session.pool_spawns == 2


class TestStreaming:
    def test_as_completed_yields_every_query(self):
        queries = make_queries(3)
        with OptimizerSession("cloud") as session:
            items = list(session.as_completed(queries))
        assert sorted(item.index for item in items) == [0, 1, 2]
        assert all(item.ok for item in items)

    def test_as_completed_error_isolated_poisoned_query(self, monkeypatch):
        real = session_module._optimize_payload

        def poisoned(payload):
            if payload[0] == 1:
                raise RuntimeError("poisoned query")
            return real(payload)

        monkeypatch.setattr(session_module, "_optimize_payload", poisoned)
        queries = make_queries(3)
        with OptimizerSession("cloud") as session:
            items = sorted(session.as_completed(queries),
                           key=lambda item: item.index)
        assert [item.status for item in items] == ["ok", "error", "ok"]
        assert "poisoned query" in items[1].error
        assert items[1].plan_set is None

    def test_submit_future_resolves_to_item(self):
        (query,) = make_queries(1)
        with OptimizerSession("cloud") as session:
            item = session.submit(query).result(timeout=60)
            assert item.status == "ok"
            assert item.plan_set.entries
            # A second submit of the same query warm-starts.
            again = session.submit(query).result(timeout=60)
            assert again.status == "cached"

    def test_map_deterministic_and_warm(self):
        queries = make_queries(3)
        with OptimizerSession("cloud") as session:
            first = session.map(queries)
            assert [item.index for item in first] == [0, 1, 2]
            assert [item.status for item in first] == ["ok"] * 3
            second = session.map(queries)
            assert [item.status for item in second] == ["cached"] * 3
            for a, b in zip(first, second):
                assert (a.plan_set.select([0.4], {"time": 1.0})[1]
                        == b.plan_set.select([0.4], {"time": 1.0})[1])

    def test_in_batch_duplicates_share_work(self):
        (query,) = make_queries(1)
        same = QueryGenerator(seed=0).generate(3, "chain", 1)
        with OptimizerSession("cloud") as session:
            items = session.map([query, same])
        assert [item.status for item in items] == ["ok", "cached"]
        assert items[1].plan_set is items[0].plan_set

    def test_warm_start_off_reoptimizes_duplicates(self):
        """warm_start=False forces every copy to optimize (legacy
        contract; throughput benchmarks rely on it)."""
        (query,) = make_queries(1)
        same = QueryGenerator(seed=0).generate(3, "chain", 1)
        with OptimizerSession("cloud", warm_start=False) as session:
            items = session.map([query, same])
        assert [item.status for item in items] == ["ok", "ok"]
        assert all(item.stats is not None for item in items)


class TestScenarioRegistry:
    def test_builtins_resolve(self):
        names = available_scenarios()
        assert "cloud" in names and "approx" in names
        assert get_scenario("cloud").metric_names == ("time", "fees")
        assert get_scenario("approx").metric_names == ("time",
                                                       "precision_loss")

    def test_approx_scenario_end_to_end(self):
        (query,) = make_queries(1)
        with OptimizerSession("approx") as session:
            item = session.optimize(query)
        assert item.ok and item.scenario == "approx"
        cost = item.plan_set.entries[0].cost.evaluate([0.5])
        assert set(cost) == {"time", "precision_loss"}

    def test_scenarios_key_the_warm_cache_separately(self):
        (query,) = make_queries(1)
        assert (query_signature(query, scenario="cloud")
                != query_signature(query, scenario="approx"))
        with OptimizerSession("cloud") as session:
            a = session.optimize(query)
            b = session.optimize(query, scenario="approx")
        assert a.status == "ok" and b.status == "ok"  # no cross-hit
        assert a.signature != b.signature

    def test_register_custom_scenario(self):
        registry = ScenarioRegistry()

        def factory(query, resolution):
            from repro.cloud import CloudCostModel
            return CloudCostModel(query, resolution=resolution)

        registry.register("custom-cloud", factory, CLOUD_METRICS,
                          description="test registration")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("custom-cloud", factory, CLOUD_METRICS)
        registry.register("custom-cloud", factory, CLOUD_METRICS,
                          replace=True)
        (query,) = make_queries(1)
        result = registry.get("custom-cloud").optimize(query)
        assert encode_result(result) == encode_result(
            get_scenario("cloud").optimize(query))

    def test_register_scenario_in_default_registry(self):
        def factory(query, resolution):
            from repro.cloud import CloudCostModel
            return CloudCostModel(query, resolution=resolution)

        name = "test-default-registration"
        register_scenario(name, factory, CLOUD_METRICS, replace=True)
        try:
            assert name in available_scenarios()
            (query,) = make_queries(1)
            with OptimizerSession(name) as session:
                assert session.optimize(query).ok
        finally:
            default_registry()._scenarios.pop(name, None)


class TestLegacyShims:
    def test_optimize_cloud_query_warns_and_matches_registry(self):
        (query,) = make_queries(1)
        from repro.core import optimize_cloud_query
        with pytest.warns(DeprecationWarning, match="OptimizerSession"):
            legacy = optimize_cloud_query(query, resolution=2)
        assert encode_result(legacy) == encode_result(
            optimize_query(query, "cloud", resolution=2))

    def test_optimize_with_warns_and_matches_rrpa(self):
        (query,) = make_queries(1, num_tables=2)
        from repro.cloud import CloudCostModel
        from repro.core import optimize_with
        with pytest.warns(DeprecationWarning, match="OptimizerSession"):
            legacy = optimize_with(
                PWLBackend(CloudCostModel(query, resolution=2)), query)
        direct = RRPA(
            PWLBackend(CloudCostModel(query, resolution=2))).optimize(query)
        assert encode_result(legacy) == encode_result(direct)

    def test_batch_optimizer_warns_and_matches_session(self):
        from repro.service import BatchOptimizer, BatchOptions
        queries = make_queries(2)
        with pytest.warns(DeprecationWarning, match="OptimizerSession"):
            wrapper = BatchOptimizer(BatchOptions(workers=0))
        legacy_items = wrapper.optimize_batch(queries)
        with OptimizerSession("cloud") as session:
            new_items = session.map(queries)
        for a, b in zip(legacy_items, new_items):
            assert a.status == b.status == "ok"
            assert (a.plan_set.select([0.3], {"time": 1.0, "fees": 0.2})
                    == b.plan_set.select([0.3], {"time": 1.0, "fees": 0.2}))
