"""Warm-start seeding from the store tier, through sessions and gateway.

The serving claim under test: a session backed by a
:class:`repro.store.PlanSetStore` that has seen a *similar* query
(same structural family, drifted statistics) reaches its first
guarantee cheaper than a cold run — by seeding the DP table with the
neighbor's plan subtrees and jumping the precision ladder straight to
the tight rungs — while the final exact plan set stays bit-identical
to a cold run's (the exact rung re-runs the full DP; seeds only ever
add candidate incumbents, never remove candidates).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import (Budget, OptimizerSession, PlanSetStore,
                       WarmStartCache, encode_plan_set)
from repro.bench import drift_statistics as drift_query
from repro.core import (DEFAULT_PRECISION_LADDER, SEED_JUMP_ALPHA,
                        trim_ladder_for_seed)
from repro.query import QueryGenerator
from repro.serve import GatewayConfig, ServingGateway


@pytest.fixture()
def family():
    base = QueryGenerator(seed=21).generate(num_tables=3, shape="star",
                                            num_params=1)
    return base, drift_query(base, seed=99)


def warm_store(base: Query) -> PlanSetStore:
    """A store already holding the base query's exact plan set."""
    store = PlanSetStore()
    with OptimizerSession("cloud",
                          cache=WarmStartCache(store=store)) as session:
        item = session.optimize(base, precision=0.0,
                                budget=Budget(seconds=1e9))
        assert item.status == "ok"
    assert len(store) >= 1
    return store


def rung_alphas(session: OptimizerSession, query: Query, **kwargs):
    return [event.alpha for event in session.optimize_iter(query, **kwargs)
            if event.kind == "rung_completed"]


class TestLadderTrim:
    def test_trims_to_tight_rungs(self):
        assert trim_ladder_for_seed(DEFAULT_PRECISION_LADDER) == (0.05, 0.0)
        assert trim_ladder_for_seed((0.5, 0.2, 0.1, 0.0),
                                    jump_alpha=0.1) == (0.1, 0.0)

    def test_all_coarse_keeps_target(self):
        assert trim_ladder_for_seed((0.5, 0.2),
                                    jump_alpha=0.05) == (0.2,)

    def test_noop_when_already_tight(self):
        assert trim_ladder_for_seed((0.05, 0.0)) == (0.05, 0.0)
        assert SEED_JUMP_ALPHA == 0.05


class TestSessionSeeding:
    def test_near_miss_seeds_and_final_set_bit_identical(self, family):
        base, drifted = family
        store = warm_store(base)
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            warm = session.optimize(drifted, precision=0.0,
                                    budget=Budget(seconds=1e9))
            assert session.store_seed_hits == 1
            assert session.store_seed_misses == 0
        with OptimizerSession("cloud") as session:
            cold = session.optimize(drifted, precision=0.0,
                                    budget=Budget(seconds=1e9))
        assert warm.status == cold.status == "ok"
        assert warm.alpha == cold.alpha == 0.0
        assert encode_plan_set(warm.plan_set) == encode_plan_set(
            cold.plan_set)
        store.close()

    def test_seeded_run_skips_coarse_rungs(self, family):
        base, drifted = family
        store = warm_store(base)
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            alphas = rung_alphas(session, drifted)
            assert session.store_seed_hits == 1
        assert tuple(alphas) == (0.05, 0.0)
        with OptimizerSession("cloud") as session:
            assert tuple(rung_alphas(session, drifted)) == \
                DEFAULT_PRECISION_LADDER
        store.close()

    def test_explicit_ladder_is_never_trimmed(self, family):
        base, drifted = family
        store = warm_store(base)
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            alphas = rung_alphas(session, drifted,
                                 precision_ladder=(0.5, 0.0))
            assert session.store_seed_hits == 1  # seeded, not trimmed
        assert tuple(alphas) == (0.5, 0.0)
        store.close()

    def test_jump_alpha_env_override(self, family, monkeypatch):
        base, drifted = family
        store = warm_store(base)
        monkeypatch.setenv("REPRO_STORE_SEED_ALPHA", "0.2")
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            assert tuple(rung_alphas(session, drifted)) == (0.2, 0.05, 0.0)
        monkeypatch.setenv("REPRO_STORE_SEED_ALPHA", "not-a-number")
        # A fresh near miss (the first one's exact set is now stored, so
        # it would be an exact hit): unparseable values use the default.
        other = drift_query(base, seed=123)
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            assert tuple(rung_alphas(session, other)) == (0.05, 0.0)
        store.close()

    def test_seeding_disabled_by_env(self, family, monkeypatch):
        base, drifted = family
        store = warm_store(base)
        monkeypatch.setenv("REPRO_STORE_SEED", "0")
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            assert tuple(rung_alphas(session, drifted)) == \
                DEFAULT_PRECISION_LADDER
            assert session.store_seed_hits == 0
            assert session.store_seed_misses == 0
        store.close()

    def test_exact_store_hit_short_circuits_seeding(self, family):
        base, drifted = family
        store = warm_store(base)
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            first = session.optimize(drifted, precision=0.0,
                                     budget=Budget(seconds=1e9))
            assert first.status == "ok"
        # A later session sees the drifted query's own exact plan set in
        # the store: exact hit, no optimizer run, no seed lookup.
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            again = session.optimize(drifted, precision=0.0,
                                     budget=Budget(seconds=1e9))
            assert again.status == "cached"
            assert session.store_seed_hits == 0
        assert encode_plan_set(again.plan_set) == encode_plan_set(
            first.plan_set)
        store.close()

    def test_pooled_run_ships_seed_across_processes(self, family):
        base, drifted = family
        store = warm_store(base)
        with OptimizerSession(
                "cloud", workers=2,
                cache=WarmStartCache(store=store)) as session:
            warm = session.optimize(drifted, precision=0.0,
                                    budget=Budget(seconds=1e9))
            assert warm.status == "ok"
            assert session.store_seed_hits == 1
        with OptimizerSession("cloud") as session:
            cold = session.optimize(drifted, precision=0.0,
                                    budget=Budget(seconds=1e9))
        assert encode_plan_set(warm.plan_set) == encode_plan_set(
            cold.plan_set)
        store.close()

    def test_unrelated_family_does_not_seed(self, family):
        base, _ = family
        store = warm_store(base)
        other = QueryGenerator(seed=5).generate(num_tables=4,
                                                shape="chain",
                                                num_params=1)
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            item = session.optimize(other, precision=0.0,
                                    budget=Budget(seconds=1e9))
            assert item.status == "ok"
            assert session.store_seed_hits == 0
            assert session.store_seed_misses == 1
        store.close()


class TestSeedBreadth:
    def test_stored_documents_carry_repair_cost(self, family):
        base, _ = family
        store = PlanSetStore()
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            item = session.optimize(base, precision=0.0,
                                    budget=Budget(seconds=1e9))
            assert item.status == "ok"
            doc = store.get(item.signature)
        assert float(doc["repair_lps"]) > 0
        store.close()

    def test_breadth_policy_follows_recorded_repair_cost(self, monkeypatch):
        from repro.core import DEFAULT_SEED_CAP
        from repro.service.session import SEED_ALL_IN_LPS
        with OptimizerSession("cloud") as session:
            cheap = {"repair_lps": 10.0}
            expensive = {"repair_lps": SEED_ALL_IN_LPS}
            # A cheap neighbor (and an untagged legacy document) stays on
            # the conservative one-incumbent arm; a neighbor whose repair
            # was expensive adopts the whole frontier (cap None).
            assert session._seed_breadth(cheap) == DEFAULT_SEED_CAP
            assert session._seed_breadth({}) == DEFAULT_SEED_CAP
            assert session._seed_breadth({"repair_lps": "junk"}) == \
                DEFAULT_SEED_CAP
            assert session._seed_breadth(expensive) is None
            monkeypatch.setenv("REPRO_STORE_SEED_BREADTH", "all")
            assert session._seed_breadth(cheap) is None
            monkeypatch.setenv("REPRO_STORE_SEED_BREADTH", "one")
            assert session._seed_breadth(expensive) == DEFAULT_SEED_CAP

    def test_whole_frontier_seed_stays_bit_identical(self, family,
                                                     monkeypatch):
        base, drifted = family
        store = warm_store(base)
        monkeypatch.setenv("REPRO_STORE_SEED_BREADTH", "all")
        with OptimizerSession(
                "cloud", cache=WarmStartCache(store=store)) as session:
            warm = session.optimize(drifted, precision=0.0,
                                    budget=Budget(seconds=1e9))
            assert session.store_seed_hits == 1
        with OptimizerSession("cloud") as session:
            cold = session.optimize(drifted, precision=0.0,
                                    budget=Budget(seconds=1e9))
        assert encode_plan_set(warm.plan_set) == encode_plan_set(
            cold.plan_set)
        store.close()


class TestGatewaySharedStore:
    def run_async(self, coroutine):
        return asyncio.run(coroutine)

    def test_shards_share_one_store(self, tmp_path, family):
        base, drifted = family
        path = tmp_path / "gateway.db"

        async def scenario():
            gateway = ServingGateway(GatewayConfig(
                shards=2, store_path=str(path)))
            await gateway.start()
            try:
                assert gateway.store is not None
                for shard in gateway.shards:
                    assert shard.session.cache.store is gateway.store
                # A plan set optimized on shard 0 is a store-tier hit
                # for shard 1 — routing pins signatures to shards, but
                # the persistent tier spans them all.
                session0 = gateway.shards[0].session
                session1 = gateway.shards[1].session
                item = session0.optimize(base, precision=0.0,
                                         budget=Budget(seconds=1e9))
                assert item.status == "ok"
                hit = session1.cache.get_entry(item.signature)
                assert hit is not None and hit[1] == 0.0
                # ... and seeds shard 1's near-miss runs.
                warm = session1.optimize(drifted, precision=0.0,
                                         budget=Budget(seconds=1e9))
                assert warm.status == "ok"
                assert session1.store_seed_hits == 1
                metrics = gateway.metrics_doc()
                assert metrics["store"]["entries"] >= 1
                assert metrics["shards"][1]["store_seed_hits"] == 1
                # Drain checkpoints the shared WAL ...
                assert await gateway.drain(timeout=5.0)
                wal = tmp_path / "gateway.db-wal"
                assert not wal.exists() or wal.stat().st_size == 0
            finally:
                await gateway.stop()
            # ... and stop() closes the store cleanly.
            assert gateway.store is None

        self.run_async(scenario())
        # The database file alone (no WAL) holds everything written.
        with PlanSetStore(path) as reopened:
            assert len(reopened) >= 1

    def test_gateway_without_store_path_has_no_store(self):
        async def scenario():
            gateway = ServingGateway(GatewayConfig(shards=1))
            await gateway.start()
            try:
                assert gateway.store is None
                assert "store" not in gateway.metrics_doc()
            finally:
                await gateway.stop()

        self.run_async(scenario())
