"""Tests for Pareto plan diagrams."""

from __future__ import annotations

import pytest

from repro.analysis import compute_diagram, render_diagram
from repro.core import optimize_cloud_query
from repro.query import QueryGenerator


@pytest.fixture(scope="module")
def result():
    query = QueryGenerator(seed=81).generate(3, "chain", 1)
    return optimize_cloud_query(query, resolution=2)


@pytest.fixture(scope="module")
def diagram(result):
    return compute_diagram(result, points_per_axis=31)


class TestDiagramComputation:
    def test_every_point_labeled_nonempty(self, diagram):
        assert all(label for label in diagram.labels)

    def test_labels_reference_known_plans(self, diagram):
        n = len(diagram.plans)
        for label in diagram.labels:
            assert all(0 <= i < n for i in label)

    def test_every_kept_plan_appears_somewhere(self, result, diagram):
        appearing = set().union(*diagram.labels)
        # Every kept plan should be Pareto-optimal at some sampled point
        # (RRPA discards plans with empty relevance regions; up to
        # sampling granularity the kept plans show up).
        assert len(appearing) >= len(result.entries) // 2

    def test_distinct_regions_cover_labels(self, diagram):
        regions = diagram.distinct_regions()
        assert set(diagram.labels) == set(regions)

    def test_region_masks_consistent(self, diagram):
        for idx in range(len(diagram.plans)):
            mask = diagram.region_of_plan(idx)
            assert mask.shape[0] == len(diagram.labels)
            assert mask.sum() == sum(1 for label in diagram.labels
                                     if idx in label)

    def test_labels_agree_with_frontier(self, result, diagram):
        for k in (0, len(diagram.labels) // 2, len(diagram.labels) - 1):
            x = diagram.points[k]
            frontier_sigs = {p.signature()
                             for p, __ in result.frontier_at(x)}
            label_sigs = {diagram.plans[i].signature()
                          for i in diagram.labels[k]}
            assert label_sigs == frontier_sigs


class TestRendering:
    def test_render_1d(self, diagram):
        text = render_diagram(diagram)
        assert "x0: 0 |" in text
        assert "legend" in text

    def test_render_2d(self):
        query = QueryGenerator(seed=82).generate(2, "chain", 2)
        result = optimize_cloud_query(query, resolution=1)
        diag = compute_diagram(result, points_per_axis=9)
        text = render_diagram(diag)
        assert "(x0 rightwards, x1 upwards)" in text

    def test_interval_check_requires_1d(self):
        query = QueryGenerator(seed=83).generate(2, "chain", 2)
        result = optimize_cloud_query(query, resolution=1)
        diag = compute_diagram(result, points_per_axis=5)
        with pytest.raises(ValueError):
            diag.plan_region_is_interval(0)

    def test_interval_check_1d(self, diagram):
        # The check must run for every plan without raising; at least the
        # globally-relevant plans have interval regions.
        values = [diagram.plan_region_is_interval(i)
                  for i in range(len(diagram.plans))]
        assert any(values)
