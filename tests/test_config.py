"""Regression tests for the central ``REPRO_*`` knob registry.

The registry (:mod:`repro.config`) is the single allowed reader of
``REPRO_*`` environment variables (reprolint rule REP201 bans direct
reads elsewhere).  These tests pin the three contracts the migration
must not change:

* **parse semantics** — each historical ad-hoc read's quirks survive
  (``REPRO_SCALAR_KERNELS=false`` enables the flag, ``REPRO_STORE_SEED``
  only disables on ``0``/``false``/``off``, …);
* **precedence** — explicit argument > environment > declared default;
* **behavior equivalence** — the public helpers that used to read the
  environment directly (``repro.util``, session seeding) still answer
  exactly as before.
"""

from __future__ import annotations

import pytest

from repro import config
from repro.core.run import SEED_JUMP_ALPHA
from repro.util import deferred_lp_enabled, scalar_kernels_enabled


class TestRegistry:
    def test_every_knob_is_repro_prefixed_and_documented(self):
        for declared in config.declared():
            assert declared.name.startswith("REPRO_")
            assert declared.doc.strip()
            assert declared.kind in ("flag", "switch", "float",
                                     "choice", "path")

    def test_undeclared_name_raises(self):
        with pytest.raises(KeyError, match="REPRO_NO_SUCH_KNOB"):
            config.enabled("REPRO_NO_SUCH_KNOB")  # reprolint: disable=REP202
        with pytest.raises(KeyError, match="REPRO_NO_SUCH_KNOB"):
            config.value("REPRO_NO_SUCH_KNOB")  # reprolint: disable=REP202

    def test_boolean_getter_rejects_value_kinds(self):
        with pytest.raises(TypeError):
            config.enabled("REPRO_STORE_SEED_ALPHA")
        with pytest.raises(TypeError):
            config.value("REPRO_SCALAR_KERNELS")

    def test_knob_table_lists_every_knob(self):
        table = config.knob_table_markdown()
        for declared in config.declared():
            assert f"`{declared.name}`" in table


class TestFlagSemantics:
    """``flag`` kind: truthy iff stripped raw not in ("", "0")."""

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("0", False), ("", False), (" 0 ", False),
        ("false", True),  # historical quirk: any non-"0" text enables
        ("yes", True),
    ])
    def test_scalar_kernels(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", raw)
        assert config.enabled("REPRO_SCALAR_KERNELS") is expected
        assert scalar_kernels_enabled() is expected

    def test_scalar_kernels_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
        assert scalar_kernels_enabled() is False

    def test_deferred_lp_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFERRED_LP", raising=False)
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
        assert deferred_lp_enabled() is True

    def test_deferred_lp_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "0")
        assert deferred_lp_enabled() is False

    def test_scalar_kernels_implies_eager(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFERRED_LP", "1")
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        assert deferred_lp_enabled() is False


class TestSwitchSemantics:
    """``switch`` kind: falsy only on 0 / false / off (any case)."""

    @pytest.mark.parametrize("raw,expected", [
        ("0", False), ("false", False), ("OFF", False),
        ("1", True), ("no", True), ("", True),
    ])
    def test_store_seed(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_STORE_SEED", raw)
        assert config.enabled("REPRO_STORE_SEED") is expected

    def test_store_seed_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_SEED", raising=False)
        assert config.enabled("REPRO_STORE_SEED") is True


class TestValueKinds:
    def test_float_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SEED_ALPHA", "0.125")
        assert config.value("REPRO_STORE_SEED_ALPHA") == 0.125

    def test_float_unset_and_unparseable_fall_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_SEED_ALPHA", raising=False)
        assert config.value("REPRO_STORE_SEED_ALPHA") is None
        monkeypatch.setenv("REPRO_STORE_SEED_ALPHA", "not-a-float")
        assert config.value("REPRO_STORE_SEED_ALPHA") is None
        # The session maps the None fallback to SEED_JUMP_ALPHA.
        assert SEED_JUMP_ALPHA == 0.05

    @pytest.mark.parametrize("raw,expected", [
        ("all", "all"), ("ONE", "one"), ("auto", "auto"),
        ("garbage", "auto"),  # invalid values fall back to the default
    ])
    def test_choice_normalizes(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_STORE_SEED_BREADTH", raw)
        assert config.value("REPRO_STORE_SEED_BREADTH") == expected

    def test_path_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_PERSIST_DB", "/tmp/x.db")
        assert config.value("REPRO_STORE_PERSIST_DB") == "/tmp/x.db"
        monkeypatch.delenv("REPRO_STORE_PERSIST_DB", raising=False)
        assert config.value("REPRO_STORE_PERSIST_DB") is None


class TestPrecedence:
    """Explicit argument > environment > declared default."""

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SEED_ALPHA", "0.5")
        assert config.value("REPRO_STORE_SEED_ALPHA",
                            override=0.01) == 0.01
        monkeypatch.setenv("REPRO_STORE_SEED", "0")
        assert config.enabled("REPRO_STORE_SEED", override=True) is True

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SEED_BREADTH", "all")
        assert config.value("REPRO_STORE_SEED_BREADTH") == "all"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_SEED_BREADTH", raising=False)
        assert config.value("REPRO_STORE_SEED_BREADTH") == "auto"
