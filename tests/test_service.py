"""Tests for the legacy batch service surface (repro.service.batch).

BatchOptimizer is a deprecated wrapper over OptimizerSession; these tests
pin the legacy contract (ordering, isolation, timeouts, warm starts) that
the wrapper must keep honoring.  Session-native behavior is covered in
``test_session.py``.
"""

from __future__ import annotations

import pytest

from repro.core import PWLRRPAOptions, PlanSelector, optimize_cloud_query
from repro.query import QueryGenerator
from repro.service import (BatchOptimizer, BatchOptions, WarmStartCache,
                           query_signature)
from repro.service import session as session_module

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # the legacy surface warns by design


def make_queries(count: int, num_tables: int = 3, seed: int = 0):
    return [QueryGenerator(seed=seed + i).generate(num_tables, "chain", 1)
            for i in range(count)]


class TestQuerySignature:
    def test_deterministic_and_regeneration_stable(self):
        a = QueryGenerator(seed=5).generate(3, "chain", 1)
        b = QueryGenerator(seed=5).generate(3, "chain", 1)
        assert query_signature(a) == query_signature(b)

    def test_sensitive_to_workload_and_config(self):
        base = QueryGenerator(seed=5).generate(3, "chain", 1)
        other = QueryGenerator(seed=6).generate(3, "chain", 1)
        assert query_signature(base) != query_signature(other)
        assert (query_signature(base, resolution=2)
                != query_signature(base, resolution=3))
        assert (query_signature(base)
                != query_signature(base, options=PWLRRPAOptions(
                    approximation_factor=0.1)))


class TestBatchOrderingAndResults:
    def test_results_in_input_order(self):
        queries = make_queries(4)
        items = BatchOptimizer(BatchOptions(workers=0)).optimize_batch(
            queries)
        assert [item.index for item in items] == [0, 1, 2, 3]
        assert all(item.status == "ok" for item in items)
        assert all(item.plan_set.entries for item in items)

    def test_plan_sets_match_direct_optimization(self):
        (query,) = make_queries(1)
        (item,) = BatchOptimizer(BatchOptions(workers=0)).optimize_batch(
            [query])
        direct = optimize_cloud_query(query, resolution=2)
        x = [0.5]
        plan, cost = item.plan_set.select(x, {"time": 1.0, "fees": 0.5})
        picked = PlanSelector(direct).by_weighted_sum(
            x, {"time": 1.0, "fees": 0.5})
        assert repr(plan) == repr(picked.plan)
        assert cost == pytest.approx(picked.cost)

    def test_process_pool_matches_serial(self):
        queries = make_queries(3, num_tables=2)
        serial = BatchOptimizer(BatchOptions(workers=0)).optimize_batch(
            queries)
        pooled = BatchOptimizer(BatchOptions(workers=2)).optimize_batch(
            queries)
        assert [i.index for i in pooled] == [0, 1, 2]
        for a, b in zip(serial, pooled):
            assert b.status == "ok"
            assert len(a.plan_set.entries) == len(b.plan_set.entries)


class TestErrorIsolation:
    def test_one_failure_does_not_poison_the_batch(self, monkeypatch):
        queries = make_queries(3)
        real = session_module._optimize_payload

        def flaky(payload):
            if payload[0] == 1:
                raise RuntimeError("injected worker failure")
            return real(payload)

        monkeypatch.setattr(session_module, "_optimize_payload", flaky)
        items = BatchOptimizer(BatchOptions(workers=0)).optimize_batch(
            queries)
        assert [item.status for item in items] == ["ok", "error", "ok"]
        assert "injected worker failure" in items[1].error
        assert items[1].plan_set is None
        assert items[0].ok and items[2].ok


def _sleepy_leader(payload):
    """Worker stub: query 0 stalls far past any test deadline.

    Module-level so the process pool can pickle it (the forked workers
    inherit the monkeypatched module state).
    """
    if payload[0] == 0:
        import time as _time
        _time.sleep(5.0)
    return session_module._real_optimize_payload(payload)


class TestTimeouts:
    def test_deadline_isolates_slow_queries(self, monkeypatch):
        import time

        monkeypatch.setattr(session_module, "_real_optimize_payload",
                            session_module._optimize_payload,
                            raising=False)
        monkeypatch.setattr(session_module, "_optimize_payload",
                            _sleepy_leader)
        queries = make_queries(2, num_tables=2)
        optimizer = BatchOptimizer(BatchOptions(workers=2,
                                                timeout_seconds=1.0))
        started = time.monotonic()
        items = optimizer.optimize_batch(queries)
        elapsed = time.monotonic() - started
        assert items[0].status == "timeout"
        assert items[0].plan_set is None
        assert items[1].status == "ok"
        # The batch returns at the deadline instead of stalling on the
        # abandoned worker (which keeps sleeping in the background; the
        # session's close() terminates it).
        assert elapsed < 4.0
        optimizer.session.close()


class TestWarmStartCache:
    def test_hit_and_miss_accounting(self):
        queries = make_queries(2)
        optimizer = BatchOptimizer(BatchOptions(workers=0))
        first = optimizer.optimize_batch(queries)
        assert [i.status for i in first] == ["ok", "ok"]
        assert optimizer.cache.hits == 0
        second = optimizer.optimize_batch(queries)
        assert [i.status for i in second] == ["cached", "cached"]
        assert optimizer.cache.hits == 2
        # Cached plan sets select identically to fresh ones.
        for a, b in zip(first, second):
            assert (a.plan_set.select([0.4], {"time": 1.0})[1]
                    == b.plan_set.select([0.4], {"time": 1.0})[1])

    def test_duplicates_within_one_batch_share_work(self):
        (query,) = make_queries(1)
        same = QueryGenerator(seed=0).generate(3, "chain", 1)
        items = BatchOptimizer(BatchOptions(workers=0)).optimize_batch(
            [query, same])
        assert [i.status for i in items] == ["ok", "cached"]
        assert items[1].ok

    def test_warm_start_disabled(self):
        queries = make_queries(1)
        optimizer = BatchOptimizer(BatchOptions(workers=0,
                                                warm_start=False))
        optimizer.optimize_batch(queries)
        items = optimizer.optimize_batch(queries)
        assert items[0].status == "ok"
        assert len(optimizer.cache) == 0

    def test_lru_bound(self):
        cache = WarmStartCache(maxsize=2)
        for i in range(4):
            cache.put(f"sig{i}", {"version": 1, "entries": []})
        assert len(cache) == 2
        assert cache.get("sig0") is None
        assert cache.get("sig3") is not None

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        queries = make_queries(1)
        sig = query_signature(queries[0])
        (tmp_path / f"{sig}.json").write_text("{ not json")
        optimizer = BatchOptimizer(BatchOptions(workers=0),
                                   cache=WarmStartCache(directory=tmp_path))
        items = optimizer.optimize_batch(queries)
        # The damaged file neither fails the batch nor serves bad data.
        assert items[0].status == "ok"
        assert items[0].plan_set.entries

    def test_undecodable_memory_entry_reoptimizes(self):
        queries = make_queries(1)
        optimizer = BatchOptimizer(BatchOptions(workers=0))
        optimizer.cache.put(query_signature(queries[0]), {"version": 999})
        items = optimizer.optimize_batch(queries)
        assert items[0].status == "ok"

    def test_directory_persistence(self, tmp_path):
        queries = make_queries(1)
        options = BatchOptions(workers=0)
        first = BatchOptimizer(options,
                               cache=WarmStartCache(directory=tmp_path))
        assert first.optimize_batch(queries)[0].status == "ok"
        # A fresh process/cache instance warm-starts from disk.
        second = BatchOptimizer(options,
                                cache=WarmStartCache(directory=tmp_path))
        assert second.optimize_batch(queries)[0].status == "cached"
