"""Tests for the serving gateway (``repro.serve``).

Covers the wire protocol (query round trips, request validation), the
admission layer (tenant token buckets, capacity backpressure, drain),
signature-affine routing, the end-to-end HTTP contract (one shared
gateway: bit-identical plan sets vs. a direct session, deadline
partials with guarantees, NDJSON streaming order, 4xx mapping,
metrics counters) and graceful drain.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import OptimizerSession
from repro.core import decode_plan_set, encode_plan_set, guarantee_bound
from repro.query import QueryGenerator
from repro.serve import (AdmissionController, GatewayClient,
                         GatewayConfig, ProtocolError, SignatureRouter,
                         TokenBucket, launch, parse_optimize_request,
                         query_from_doc, query_to_doc)
from repro.service.signature import query_signature


def make_query(seed: int = 0, num_tables: int = 3):
    return QueryGenerator(seed=seed).generate(num_tables, "chain", 1)


def request_body(query, **fields) -> bytes:
    doc = {"query": query_to_doc(query)}
    doc.update(fields)
    return json.dumps(doc).encode()


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_query_round_trip_preserves_signature(self):
        for seed in range(4):
            query = make_query(seed=seed, num_tables=4)
            wire = json.loads(json.dumps(query_to_doc(query)))
            rebuilt = query_from_doc(wire)
            assert query_signature(rebuilt) == query_signature(query)

    def test_round_trip_preserves_structure(self):
        query = make_query(seed=2)
        rebuilt = query_from_doc(query_to_doc(query))
        assert rebuilt.tables == query.tables
        assert rebuilt.join_predicates == query.join_predicates
        assert rebuilt.parametric_predicates == \
            query.parametric_predicates

    def test_parse_full_request(self):
        request = parse_optimize_request(request_body(
            make_query(), tenant="team-a", precision=0.2,
            budget={"seconds": 1.5, "lps": 100},
            deadline_seconds=2.0, stream=True))
        assert request.tenant == "team-a"
        assert request.precision == 0.2
        assert request.budget["lps"] == 100
        assert request.deadline_seconds == 2.0
        assert request.stream and request.anytime

    def test_defaults(self):
        request = parse_optimize_request(request_body(make_query()))
        assert request.tenant == "default"
        assert not request.stream and not request.anytime

    @pytest.mark.parametrize("body", [
        b"not json",
        b"[]",
        b'{"tenant": "t"}',
        b'{"query": 42}',
        b'{"query": {"tables": []}}',
        b'{"query": {"tables": [{"name": "t"}]}}',
    ])
    def test_malformed_bodies_raise(self, body):
        with pytest.raises(ProtocolError):
            parse_optimize_request(body)

    @pytest.mark.parametrize("fields", [
        {"tenant": ""},
        {"precision": -0.1},
        {"precision": "fast"},
        {"budget": {"parsecs": 12}},
        {"budget": {"seconds": -1}},
        {"budget": {"lps": "many"}},
        {"deadline_seconds": 0},
    ])
    def test_invalid_fields_raise(self, fields):
        with pytest.raises(ProtocolError):
            parse_optimize_request(request_body(make_query(), **fields))


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------

class TestAdmission:
    def test_token_bucket_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.try_acquire(0.0) for _ in range(3)] == [0.0] * 3
        wait = bucket.try_acquire(0.0)
        assert wait == pytest.approx(0.1)
        # After the advertised wait a token is available again.
        assert bucket.try_acquire(wait) == 0.0

    def test_tenant_isolation(self):
        controller = AdmissionController(tenant_rate=1.0,
                                         tenant_burst=2,
                                         max_pending=100,
                                         clock=lambda: 0.0)
        assert controller.admit("a", now=0.0).admitted
        assert controller.admit("a", now=0.0).admitted
        blocked = controller.admit("a", now=0.0)
        assert blocked.decision == "rate" and blocked.retry_after > 0
        # Tenant b has its own bucket.
        assert controller.admit("b", now=0.0).admitted

    def test_capacity_bound_and_release(self):
        controller = AdmissionController(tenant_rate=1000.0,
                                         tenant_burst=1000,
                                         max_pending=2,
                                         clock=lambda: 0.0)
        assert controller.admit("a").admitted
        assert controller.admit("a").admitted
        shed = controller.admit("b")
        assert shed.decision == "capacity" and shed.retry_after > 0
        controller.release()
        assert controller.admit("b").admitted

    def test_draining_rejects_everything(self):
        controller = AdmissionController(tenant_rate=1000.0,
                                         tenant_burst=1000,
                                         max_pending=10)
        controller.draining = True
        assert controller.admit("a").decision == "draining"


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------

class TestRouter:
    def test_routing_is_deterministic_and_sticky(self):
        router = SignatureRouter(4)
        signatures = [query_signature(make_query(seed=s, num_tables=4))
                      for s in range(8)]
        first = [router.route(sig) for sig in signatures]
        second = [router.route(sig) for sig in signatures]
        assert first == second
        assert router.sticky_hits == len(signatures)
        assert sum(router.shard_hits) == 2 * len(signatures)
        assert router.distinct_signatures() == len(signatures)

    def test_single_shard(self):
        router = SignatureRouter(1)
        assert router.route("deadbeef00") == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            SignatureRouter(0)


# ----------------------------------------------------------------------
# End-to-end gateway
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def gateway():
    """One 2-shard gateway shared by the end-to-end tests."""
    handle = launch(GatewayConfig(
        shards=2, tenant_rate=1000.0, tenant_burst=1000.0,
        max_pending=32))
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture(scope="module")
def client(gateway):
    return GatewayClient(gateway.host, gateway.port, timeout=120.0)


class TestGatewayEndToEnd:
    def test_health(self, client):
        doc = client.health()
        assert doc["status"] == "ok" and doc["shards"] == 2

    def test_served_plan_set_bit_identical_to_direct(self, client):
        query = make_query(seed=11)
        response = client.optimize(query, tenant="identity")
        assert response.status_code == 200
        assert response.doc["status"] in ("ok", "cached")
        with OptimizerSession("cloud") as session:
            direct = session.optimize(query)
        assert json.dumps(response.doc["plan_set"], sort_keys=True) == \
            json.dumps(encode_plan_set(direct.plan_set), sort_keys=True)
        # And the document decodes into a selectable plan set.
        stored = decode_plan_set(response.doc["plan_set"])
        plan, cost = stored.select([0.5], {"time": 1.0})
        assert cost["time"] > 0

    def test_repeat_signature_sticks_to_one_shard_and_caches(self,
                                                             client):
        query = make_query(seed=12)
        first = client.optimize(query, tenant="sticky")
        second = client.optimize(query, tenant="sticky")
        assert first.doc["status"] in ("ok", "cached")
        assert second.doc["status"] == "cached"
        assert second.doc["shard"] == first.doc["shard"]

    def test_deadline_expiry_returns_partial_with_guarantee(self,
                                                            client):
        query = make_query(seed=13, num_tables=5)
        response = client.optimize(query, tenant="deadline",
                                   budget={"lps": 150})
        assert response.status_code == 200
        doc = response.doc
        assert doc["status"] == "partial"
        assert doc["alpha"] > 0
        num_tables = len(query.tables)
        assert doc["guarantee"] == pytest.approx(
            guarantee_bound(doc["alpha"], num_tables))
        assert decode_plan_set(doc["plan_set"]).entries

    def test_stream_order_and_done_line(self, client):
        query = make_query(seed=14)
        lines = list(client.stream_optimize(query, tenant="stream"))
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "rung_started"
        assert kinds[-1] == "done"
        assert lines[-1]["status"] == "ok"
        rung_completions = [line for line in lines
                            if line["kind"] == "rung_completed"]
        assert rung_completions
        # Rungs tighten monotonically and each carries a plan set.
        alphas = [line["alpha"] for line in rung_completions]
        assert alphas == sorted(alphas, reverse=True)
        for line in rung_completions:
            assert decode_plan_set(line["plan_set"]).entries
        # Stream events interleave per rung: every completion's rung
        # index matches its preceding rung_started.
        assert lines[-1]["alpha"] == alphas[-1]

    def test_streamed_final_rung_matches_single_response(self, client):
        query = make_query(seed=15)
        lines = list(client.stream_optimize(query, tenant="stream"))
        final = [line for line in lines
                 if line["kind"] == "rung_completed"][-1]
        response = client.optimize(query, tenant="stream")
        assert response.doc["status"] == "cached"
        assert json.dumps(final["plan_set"], sort_keys=True) == \
            json.dumps(response.doc["plan_set"], sort_keys=True)

    def test_tenant_over_budget_gets_429_with_retry_after(self,
                                                          gateway):
        # Separate gateway config knobs would race the shared fixture's
        # generous buckets, so drive the admission path directly
        # through a tight per-tenant bucket on a second gateway.
        with launch(GatewayConfig(shards=1, tenant_rate=0.5,
                                  tenant_burst=2)) as strict:
            client = GatewayClient(strict.host, strict.port,
                                   timeout=120.0)
            query = make_query(seed=16)
            codes = [client.optimize(query, tenant="greedy").status_code
                     for _ in range(3)]
            assert codes[:2] == [200, 200]
            assert codes[2] == 429
            response = client.optimize(query, tenant="greedy")
            assert response.retry_after is not None
            assert response.retry_after > 0
            # An unrelated tenant is unaffected.
            assert client.optimize(query,
                                   tenant="patient").status_code == 200
            metrics = client.metrics()
            assert metrics["tenants"]["greedy"]["rejected_rate"] == 2
            assert metrics["tenants"]["patient"]["rejected_rate"] == 0

    @pytest.mark.parametrize("method,path,body,expected", [
        ("POST", "/v1/optimize", b"not json", 400),
        ("POST", "/v1/optimize", b'{"tenant": "x"}', 400),
        ("GET", "/v1/optimize", b"", 405),
        ("POST", "/metrics", b"", 405),
        ("GET", "/nope", b"", 404),
    ])
    def test_http_error_mapping(self, client, method, path, body,
                                expected):
        response = client._request(method, path, body or None)
        assert response.status_code == expected
        assert "error" in response.doc

    def test_malformed_counted_against_tenant(self, client):
        client._request("POST", "/v1/optimize",
                        b'{"tenant": "sloppy", "query": 42}')
        metrics = client.metrics()
        assert metrics["tenants"]["sloppy"]["malformed"] >= 1

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert metrics["routing"]["num_shards"] == 2
        assert len(metrics["shards"]) == 2
        assert sum(metrics["routing"]["shard_hits"]) == \
            metrics["routing"]["requests"]
        totals = metrics["totals"]
        assert totals["completed"] <= totals["admitted"]
        assert metrics["latency"]["total"] >= totals["completed"]
        assert metrics["qps"] > 0


class TestGracefulDrain:
    def test_drain_finishes_in_flight_then_rejects_new(self):
        with launch(GatewayConfig(shards=1, tenant_rate=1000.0,
                                  tenant_burst=1000.0)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            query = make_query(seed=17, num_tables=5)
            results = {}

            def run():
                results["inflight"] = client.optimize(query,
                                                      tenant="drainer")

            thread = threading.Thread(target=run)
            thread.start()
            # Wait until the request is admitted, then start draining.
            deadline = time.monotonic() + 30.0
            while handle.gateway.admission.pending == 0:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("request never admitted")
                time.sleep(0.005)
            drained = handle.drain(timeout=120.0)
            thread.join(timeout=120.0)
            assert drained
            # The in-flight request completed normally...
            assert results["inflight"].status_code == 200
            assert results["inflight"].doc["status"] in ("ok", "cached")
            # ...and new work is refused with 503.
            rejected = client.optimize(query, tenant="drainer")
            assert rejected.status_code == 503
            assert client.health()["status"] == "draining"
            metrics = client.metrics()
            assert metrics["tenants"]["drainer"]["rejected_draining"] \
                == 1
