"""Unit tests for the LP layer: both backends, counters, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp import (LinearProgramSolver, LPStats, default_stats,
                      make_solver, solve_simplex)


class TestSimplexCore:
    def test_simple_bounded_minimum(self):
        # min x0 + x1 s.t. x0 >= 1, x1 >= 2 (via -x <= -bound).
        res = solve_simplex([1.0, 1.0],
                            a_ub=[[-1, 0], [0, -1]], b_ub=[-1, -2])
        assert res.is_optimal
        assert res.objective == pytest.approx(3.0)
        assert res.x == pytest.approx([1.0, 2.0])

    def test_infeasible(self):
        # x <= 0 and x >= 1 simultaneously.
        res = solve_simplex([1.0], a_ub=[[1], [-1]], b_ub=[0, -1])
        assert res.status == "infeasible"

    def test_unbounded(self):
        # min -x with x >= 0 only.
        res = solve_simplex([-1.0], a_ub=[[-1]], b_ub=[0])
        assert res.status == "unbounded"

    def test_bounds_handled(self):
        res = solve_simplex([-1.0, -1.0], a_ub=[[1, 1]], b_ub=[10],
                            bounds=[(0, 4), (0, 3)])
        assert res.is_optimal
        assert res.objective == pytest.approx(-7.0)

    def test_negative_lower_bounds(self):
        res = solve_simplex([1.0], bounds=[(-5, 5)])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(-5.0)

    def test_free_variables_via_split(self):
        # min x s.t. x >= -3 expressed through constraints (x free).
        res = solve_simplex([1.0], a_ub=[[-1]], b_ub=[3])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(-3.0)

    def test_degenerate_constraints(self):
        # Redundant duplicated rows should not break the pivot rules.
        res = solve_simplex([1.0, 0.0],
                            a_ub=[[-1, 0], [-1, 0], [0, 1], [0, 1]],
                            b_ub=[-1, -1, 5, 5])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(1.0)


class TestBackendAgreement:
    """Both backends must agree on random feasible LPs."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_agreement(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 3, 8
        a = rng.normal(size=(m, n))
        # Make the region non-empty and bounded around a known point.
        x0 = rng.uniform(-1, 1, size=n)
        b = a @ x0 + rng.uniform(0.1, 2.0, size=m)
        box = [(-5.0, 5.0)] * n
        c = rng.normal(size=n)
        scipy_solver = make_solver(backend="scipy")
        simplex_solver = make_solver(backend="simplex")
        r1 = scipy_solver.solve(c, a, b, box)
        r2 = simplex_solver.solve(c, a, b, box)
        assert r1.status == r2.status == "optimal"
        assert r1.objective == pytest.approx(r2.objective, abs=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_infeasible_agreement(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 2
        direction = rng.normal(size=n)
        # direction @ x <= -1 and -direction @ x <= -1 cannot both hold.
        a = np.vstack([direction, -direction])
        b = np.array([-1.0, -1.0])
        for backend in ("scipy", "simplex"):
            res = make_solver(backend=backend).solve(
                np.zeros(n), a, b, [(-10, 10)] * n)
            assert res.is_infeasible


class TestBasisSolve:
    """The fast basis-solve substrate mirrors np.linalg.solve's contract."""

    def test_matches_wrapper_bitwise(self):
        from repro.lp.simplex import _basis_solve
        rng = np.random.default_rng(3)
        a = rng.normal(size=(9, 9))
        b = rng.normal(size=9)
        assert (_basis_solve(a, b) == np.linalg.solve(a, b)).all()

    @pytest.mark.parametrize("action", ["error", "ignore"])
    def test_singular_raises_linalgerror(self, action):
        # Under warnings-promoted-to-errors (common downstream) the
        # gufunc's invalid-value warning must still surface as the
        # wrapper's LinAlgError so the hybrid scipy fallback engages.
        import warnings
        from repro.lp.simplex import _basis_solve
        with warnings.catch_warnings():
            warnings.simplefilter(action)
            with pytest.raises(np.linalg.LinAlgError):
                _basis_solve(np.zeros((2, 2)), np.ones(2))

    def test_masked_stack_isolates_singular_slice(self):
        import warnings
        from repro.lp.simplex import _basis_solve_masked
        mats = np.stack([np.eye(2), np.zeros((2, 2)), 2 * np.eye(2)])
        vecs = np.ones((3, 2))
        for action in ("error", "ignore"):
            with warnings.catch_warnings():
                warnings.simplefilter(action)
                out = _basis_solve_masked(mats, vecs)
            assert (out[0] == np.ones(2)).all()
            assert np.isnan(out[1]).all()
            assert (out[2] == 0.5 * np.ones(2)).all()


class TestLinearProgramSolver:
    def test_counts_recorded(self):
        stats = LPStats()
        s = LinearProgramSolver(stats=stats)
        s.solve([1.0], [[-1.0]], [0.0], [(None, None)], purpose="unit")
        assert stats.solved == 1
        assert stats.by_purpose() == {"unit": 1}

    def test_feasibility_counted_separately(self):
        stats = LPStats()
        s = LinearProgramSolver(stats=stats)
        s.solve(np.zeros(2), [[1.0, 0.0]], [1.0])
        assert stats.feasibility_checks == 1
        assert stats.optimizations == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            LinearProgramSolver(backend="cplex")

    def test_default_stats_shared(self):
        s = LinearProgramSolver()
        assert s.stats is default_stats()

    def test_inconsistent_shapes_raise(self):
        s = make_solver(backend="scipy")
        with pytest.raises(SolverError):
            s.solve([1.0, 1.0], [[1.0, 0.0]], [1.0, 2.0])

    def test_hybrid_backend_solves(self):
        s = LinearProgramSolver(backend="hybrid")
        res = s.solve([1.0], [[-1.0]], [-2.0])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0)


class TestLPStats:
    def test_merge(self):
        a, b = LPStats(), LPStats()
        a.record(purpose="p1")
        b.record(purpose="p1", feasible=False)
        b.record(purpose="p2", objective=False)
        a.merge(b)
        assert a.solved == 3
        assert a.infeasible == 1
        assert a.feasibility_checks == 1
        assert a.by_purpose() == {"p1": 2, "p2": 1}

    def test_reset(self):
        s = LPStats()
        s.record()
        s.reset()
        assert s.solved == 0
        assert s.by_purpose() == {}
