"""Robustness and failure-injection tests.

The pruning logic must stay sound under degenerate inputs: exact cost
ties, plans identical everywhere, solver failures, and near-boundary
geometry.  Algorithm 1's ordering (prune the new plan first, only then
reduce incumbents) is what prevents mutually-dominating plans from
eliminating each other; these tests pin that behaviour down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudCostModel
from repro.core import PWLRRPA, RRPA, GridBackend, make_grid
from repro.cost import SharedPartition, ParamPolynomial
from repro.errors import SolverError
from repro.geometry import ConvexPolytope, RelevanceRegion
from repro.lp import LinearProgramSolver, LPStats
from repro.plans import ScanOperator
from repro.query import QueryGenerator


class TiedCostModel:
    """Cost model where every operator has identical constant cost.

    Every plan for a table set then ties exactly; RRPA must keep exactly
    one plan per table set (the first), never zero.
    """

    from repro.cost import CLOUD_METRICS as metrics

    def __init__(self, query, partition=None):
        self.query = query
        self.partition = partition or SharedPartition([0.0], [1.0], 2)

    def scan_operators(self, table):
        return (ScanOperator(name="full_scan"),
                ScanOperator(name="other_scan"))

    def join_operators(self):
        from repro.plans import CLOUD_JOIN_OPERATORS
        return CLOUD_JOIN_OPERATORS

    def _unit(self):
        one = ParamPolynomial.constant(1, 1.0)
        return self.partition.vector_from_polynomials(
            {"time": one, "fees": one})

    def scan_cost(self, plan):
        return self._unit()

    def join_local_cost(self, left, right, operator):
        return self._unit()


class TestExactTies:
    def test_single_plan_survives_per_tie_group(self):
        query = QueryGenerator(seed=91).generate(3, "chain", 1)
        model = TiedCostModel(query)
        result = PWLRRPA().optimize_with_model(query, model)
        # All plans tie: exactly one survives (mutual domination prunes
        # newcomers, never the incumbent).
        assert len(result.entries) == 1

    def test_grid_backend_ties(self):
        query = QueryGenerator(seed=92).generate(3, "chain", 1)
        cloud = CloudCostModel(query, resolution=2)

        class TiedPolyModel:
            metrics = cloud.metrics

            def scan_operators(self, table):
                return cloud.scan_operators(table)

            def join_operators(self):
                return cloud.join_operators()

            def scan_cost_polynomials(self, plan):
                one = ParamPolynomial.constant(1, 1.0)
                return {"time": one, "fees": one}

            def join_cost_polynomials(self, left, right, operator):
                one = ParamPolynomial.constant(1, 1.0)
                return {"time": one, "fees": one}

        backend = GridBackend(query, TiedPolyModel(),
                              points=make_grid(1, 5))
        result = RRPA(backend).optimize(query)
        assert len(result.entries) == 1


class TestSolverFailures:
    def test_solver_error_propagates(self, monkeypatch):
        solver = LinearProgramSolver(stats=LPStats(), backend="scipy")

        def boom(*args, **kwargs):
            raise SolverError("injected failure")

        monkeypatch.setattr(solver, "_solve_scipy", boom)
        poly = ConvexPolytope.unit_box(2)
        with pytest.raises(SolverError):
            poly.is_empty(solver)

    def test_hybrid_falls_back_to_scipy(self, monkeypatch):
        solver = LinearProgramSolver(stats=LPStats(), backend="hybrid")

        def broken_simplex(*args, **kwargs):
            raise SolverError("injected simplex failure")

        monkeypatch.setattr(solver, "_solve_simplex", broken_simplex)
        result = solver.solve([1.0], [[-1.0]], [-2.0])
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.0)


class TestNearBoundaryGeometry:
    def test_sliver_region_treated_as_empty(self, solver):
        """A relevance region reduced to a measure-zero sliver counts as
        empty (the documented tolerance contract)."""
        rr = RelevanceRegion(ConvexPolytope.unit_box(1))
        rr.subtract(ConvexPolytope.box([0.0], [0.5]))
        rr.subtract(ConvexPolytope.box([0.5], [1.0]))
        assert rr.is_empty(solver)

    def test_epsilon_gap_region_stays_alive(self, solver):
        rr = RelevanceRegion(ConvexPolytope.unit_box(1))
        rr.subtract(ConvexPolytope.box([0.0], [0.49]))
        rr.subtract(ConvexPolytope.box([0.51], [1.0]))
        assert not rr.is_empty(solver)

    def test_identical_cost_functions_mutually_dominate(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        poly = ParamPolynomial.variable(1, 0) * 2 + 1
        a = part.vector_from_polynomials({"time": poly, "fees": poly})
        b = part.vector_from_polynomials({"time": poly, "fees": poly})
        doms = a.dominance_polytopes(b, solver)
        for x in np.linspace(0, 1, 11):
            assert any(p.contains_point([x]) for p in doms)


class TestDegenerateQueries:
    def test_two_table_minimum(self):
        query = QueryGenerator(seed=93).generate(2, "chain", 1)
        result = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
        ).optimize(query)
        assert result.entries

    def test_single_table_pwl(self):
        query = QueryGenerator(seed=94).generate(1, "chain", 1)
        result = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
        ).optimize(query)
        # Full scan and index seek both survive (seek wins at low, scan
        # at high selectivity) or one dominates; never zero plans.
        assert 1 <= len(result.entries) <= 2

    def test_zero_params_uses_dummy_dimension(self):
        query = QueryGenerator(seed=95).generate(3, "chain", 0)
        result = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=1)
        ).optimize(query)
        assert result.entries
        # Costs are constant along the dummy axis.
        for entry in result.entries[:3]:
            assert entry.cost.evaluate([0.1]) == entry.cost.evaluate([0.9])