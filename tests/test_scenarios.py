"""End-to-end scenario tests: Scenario 2, the bench harness, definitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import ApproxCostModel
from repro.bench import (QUICK, SweepPoint, format_table, figure12_report,
                         queries_for_point, run_point,
                         run_query_measurement, sweep_points)
from repro.core import PWLRRPA, PlanSelector
from repro.cost import MultiObjectivePWL, PiecewiseLinearFunction
from repro.geometry import ConvexPolytope
from repro.query import QueryGenerator


class TestScenario2EndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        query = QueryGenerator(seed=21).generate(3, "chain", 1)
        optimizer = PWLRRPA(
            cost_model_factory=lambda q: ApproxCostModel(q, resolution=2))
        return optimizer.optimize(query)

    def test_frontier_has_precision_tradeoff(self, result):
        """The Pareto set must offer exact and approximate options."""
        losses = set()
        for entry in result.entries:
            losses.add(round(
                entry.cost.evaluate([0.5])["precision_loss"], 3))
        assert 0.0 in losses          # an exact plan survives
        assert any(v > 0 for v in losses)  # a sampled plan survives

    def test_sampled_plans_faster(self, result):
        x = [0.5]
        exact = [e for e in result.entries
                 if e.cost.evaluate(x)["precision_loss"] < 1e-9]
        sampled = [e for e in result.entries
                   if e.cost.evaluate(x)["precision_loss"] > 0.5]
        assert exact and sampled
        fastest_exact = min(e.cost.evaluate(x)["time"] for e in exact)
        fastest_sampled = min(e.cost.evaluate(x)["time"] for e in sampled)
        assert fastest_sampled < fastest_exact

    def test_policy_selection(self, result):
        selector = PlanSelector(result)
        x = [0.4]
        exact = selector.by_bounded_metric(x, minimize="time",
                                           bounds={"precision_loss": 0.0})
        assert exact.cost["precision_loss"] == pytest.approx(0.0)
        fast = selector.by_weighted_sum(x, {"time": 1.0})
        assert fast.cost["time"] <= exact.cost["time"] + 1e-12

    def test_max_accumulation_correct(self, result):
        """Precision loss of any plan equals the max over its scans."""
        x = [0.5]
        for entry in result.entries:
            rates = [node.operator.sampling_rate
                     for node in entry.plan.nodes()
                     if hasattr(node, "table")]
            expected = max(1.0 - r for r in rates)
            got = entry.cost.evaluate(x)["precision_loss"]
            assert got == pytest.approx(expected, abs=1e-9)


class TestBenchHarness:
    def test_sweep_points_expand_profile(self):
        points = sweep_points(QUICK, "chain")
        assert len(points) == len(QUICK.table_counts_1p) + len(
            QUICK.table_counts_2p)
        assert all(p.shape == "chain" for p in points)

    def test_queries_deterministic(self):
        point = SweepPoint(num_tables=3, shape="chain", num_params=1)
        a = queries_for_point(point, 2)
        b = queries_for_point(point, 2)
        assert [q.catalog.table(t).cardinality
                for q in a for t in q.tables] == \
            [q.catalog.table(t).cardinality for q in b for t in q.tables]

    def test_measurement_and_aggregation(self):
        point = SweepPoint(num_tables=2, shape="chain", num_params=1)
        query = queries_for_point(point, 1)[0]
        m = run_query_measurement(query, point)
        assert m.seconds > 0
        assert m.plans_created >= m.pareto_plans
        agg = run_point(point, queries_per_point=2)
        assert agg.samples == 2
        assert agg.median_plans > 0

    def test_reporting_renders(self):
        point = SweepPoint(num_tables=2, shape="chain", num_params=1)
        agg = run_point(point, queries_per_point=1)
        table = format_table([agg])
        assert "tables" in table and "chain" in table
        report = figure12_report([agg], [agg])
        assert "Figure 12" in report
        assert "Star queries" in report


class TestDefinitionsExample2:
    """Section 2 definitions on the paper's Example 2 instance."""

    def setup_method(self):
        space = ConvexPolytope.unit_box(1)
        self.space = space
        self.p1 = MultiObjectivePWL({
            "time": PiecewiseLinearFunction.affine(space, [2.0], 0.0),
            "fees": PiecewiseLinearFunction.constant(space, 3.0)})
        self.p2 = MultiObjectivePWL({
            "time": PiecewiseLinearFunction.affine(space, [1.0], 0.5),
            "fees": PiecewiseLinearFunction.constant(space, 2.0)})
        self.p3 = MultiObjectivePWL({
            "time": PiecewiseLinearFunction.affine(space, [1.0], 0.5),
            "fees": PiecewiseLinearFunction.constant(space, 2.0)})

    def test_mutual_domination_of_equal_plans(self):
        for x in np.linspace(0, 1, 11):
            assert self.p2.dominates_at(self.p3, [x])
            assert self.p3.dominates_at(self.p2, [x])
            assert not self.p2.strictly_dominates_at(self.p3, [x])

    def test_p2_strictly_dominates_p1_above_half(self):
        assert self.p2.strictly_dominates_at(self.p1, [0.8])
        assert not self.p2.strictly_dominates_at(self.p1, [0.3])

    def test_pareto_region_of_p1_is_low_interval(self):
        """pReg(p1) is the low-selectivity interval (the paper states
        [0, 0.5]; at exactly 0.5 the plans tie on time while p2 wins on
        fees, which is strict domination under the Section 2 definition,
        so the strictly-undominated region is [0, 0.5))."""
        for x in np.linspace(0, 1, 101):
            strictly = (self.p2.strictly_dominates_at(self.p1, [x])
                        or self.p3.strictly_dominates_at(self.p1, [x]))
            assert strictly == (x >= 0.5 - 1e-12)

    def test_both_pairs_form_pps(self):
        """{p1, p2} and {p1, p3} are Pareto plan sets."""
        plans = {"p1": self.p1, "p2": self.p2, "p3": self.p3}
        for pps in (("p1", "p2"), ("p1", "p3")):
            for other in plans.values():
                for x in np.linspace(0, 1, 21):
                    assert any(plans[name].dominates_at(other, [x])
                               for name in pps)
