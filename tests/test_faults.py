"""Unit tests for the deterministic fault-injection substrate
(``repro.faults``): schedule grammar, hit-window semantics, action
kinds, stats accounting, and — most importantly — inertness when no
schedule is installed.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import InjectedFault


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Every test starts and ends with no schedule and zero stats."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


# ---------------------------------------------------------------------------
# Schedule grammar


def test_parse_rejects_unknown_site():
    with pytest.raises(ValueError, match="unknown failpoint site"):
        faults.parse_schedule("store.put.typo:1")


def test_parse_rejects_malformed_terms():
    for spec in ("store.put.fail",          # no hits field
                 "store.put.fail:x",        # non-numeric window
                 "store.put.fail:0",        # hits are 1-based
                 "store.put.fail:5-2",      # descending range
                 ";;"):                     # no terms at all
        with pytest.raises(ValueError):
            faults.parse_schedule(spec)


def test_parse_accepts_every_window_form_and_args():
    schedule = faults.parse_schedule(
        "store.put.fail:*; serve.shard.slow:2:0.01;"
        "lp.solver.fail:1-3; service.worker.hang:4+")
    assert schedule.spec.startswith("store.put.fail:*")


# ---------------------------------------------------------------------------
# Inertness


def test_failpoints_inert_without_a_schedule():
    assert not faults.active()
    for site in faults.SITES:
        assert faults.failpoint(site) is None
    assert faults.snapshot() == {"injected": 0, "sites": {}}


def test_env_schedule_loads_lazily(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "lp.solver.fail:1")
    faults.reset()  # back to the unloaded sentinel
    assert faults.active()
    with pytest.raises(InjectedFault):
        faults.failpoint("lp.solver.fail")
    assert faults.failpoint("lp.solver.fail") is None  # window passed


def test_install_none_disables_even_with_env_set(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "lp.solver.fail:*")
    faults.install(None)
    assert not faults.active()
    assert faults.failpoint("lp.solver.fail") is None


# ---------------------------------------------------------------------------
# Hit windows fire deterministically


def test_single_hit_window():
    faults.install("store.put.fail:2")
    assert faults.failpoint("store.put.fail") is None
    with pytest.raises(InjectedFault):
        faults.failpoint("store.put.fail")
    assert faults.failpoint("store.put.fail") is None


def test_range_and_open_windows():
    faults.install("store.put.fail:2-3; store.put.locked:3+")
    fired = []
    for hit in range(1, 6):
        try:
            faults.failpoint("store.put.fail")
        except InjectedFault:
            fired.append(hit)
    assert fired == [2, 3]

    fired = []
    for hit in range(1, 6):
        try:
            faults.failpoint("store.put.locked")
        except InjectedFault:
            fired.append(hit)
    assert fired == [3, 4, 5]


def test_star_window_fires_every_hit():
    faults.install("lp.solver.fail:*")
    for _ in range(4):
        with pytest.raises(InjectedFault):
            faults.failpoint("lp.solver.fail")
    assert faults.snapshot()["sites"] == {"lp.solver.fail": 4}


def test_unscheduled_sites_are_not_counted():
    faults.install("lp.solver.fail:1")
    assert faults.failpoint("store.put.fail") is None
    with pytest.raises(InjectedFault):
        faults.failpoint("lp.solver.fail")
    assert faults.snapshot() == {
        "injected": 1, "sites": {"lp.solver.fail": 1}}


# ---------------------------------------------------------------------------
# Action kinds


def test_flag_site_returns_arg_or_true():
    faults.install("service.worker.poison:1:tainted;"
                   "service.worker.poison:2")
    assert faults.failpoint("service.worker.poison") == "tainted"
    assert faults.failpoint("service.worker.poison") is True
    assert faults.failpoint("service.worker.poison") is None


def test_sleep_site_blocks_then_returns_none():
    faults.install("serve.shard.slow:1:0.0")
    assert faults.failpoint("serve.shard.slow") is None
    assert faults.snapshot()["sites"] == {"serve.shard.slow": 1}


def test_exit_site_degrades_to_raise_in_the_main_process():
    # `exit` kinds may only kill *child* processes; in the main
    # process (this test runner) they raise instead — a schedule can
    # never take down the gateway or a user's shell.
    faults.install("service.worker.crash:1")
    with pytest.raises(InjectedFault):
        faults.failpoint("service.worker.crash")


def test_raise_site_message_carries_site_and_arg():
    faults.install("serve.shard.die:1:flaky-disk")
    with pytest.raises(InjectedFault, match="serve.shard.die: flaky-disk"):
        faults.failpoint("serve.shard.die")


# ---------------------------------------------------------------------------
# Stats accounting


def test_install_resets_stats_between_phases():
    faults.install("lp.solver.fail:*")
    with pytest.raises(InjectedFault):
        faults.failpoint("lp.solver.fail")
    assert faults.snapshot()["injected"] == 1
    faults.install("store.put.fail:1")
    assert faults.snapshot() == {"injected": 0, "sites": {}}
