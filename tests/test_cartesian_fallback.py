"""Disconnected join graphs: the Cartesian-product fallback.

The paper's enumerator "postpones Cartesian product joins as much as
possible" — for a query whose join graph is disconnected, products are
unavoidable and the enumeration must re-admit them exactly where no
connected alternative exists.
"""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, Column, Table
from repro.cloud import CloudCostModel
from repro.core import PWLRRPA, splits, subsets_in_size_order
from repro.query import JoinPredicate, ParametricPredicate, Query


@pytest.fixture
def disconnected_query():
    """Three tables, only t0-t1 joined; t2 is a Cartesian island."""
    tables = [
        Table("t0", 500, (Column("a", 50), Column("p", 10))),
        Table("t1", 800, (Column("a", 80),)),
        Table("t2", 100, (Column("b", 10),)),
    ]
    catalog = Catalog.from_tables(tables)
    return Query(
        catalog=catalog, tables=("t0", "t1", "t2"),
        join_predicates=(JoinPredicate("t0", "a", "t1", "a", 1 / 80),),
        parametric_predicates=(ParametricPredicate("t0", "p", 0),))


class TestDisconnectedEnumeration:
    def test_all_subsets_enumerated(self, disconnected_query):
        subsets = list(subsets_in_size_order(disconnected_query))
        # Disconnected graph: every subset of size >= 2 is enumerated.
        assert len(subsets) == 4  # 3 pairs + the full set

    def test_cartesian_splits_only_when_necessary(self, disconnected_query):
        q = disconnected_query
        # {t0, t1} splits via the join predicate.
        con = list(splits(q, frozenset(("t0", "t1"))))
        assert con
        assert all(q.join_graph.split_is_connected(l, r) for l, r in con)
        # {t0, t2} has no predicate: Cartesian split admitted.
        cart = list(splits(q, frozenset(("t0", "t2"))))
        assert cart == [(frozenset(("t0",)), frozenset(("t2",)))]

    def test_full_set_postpones_product(self, disconnected_query):
        q = disconnected_query
        full_splits = list(splits(q, q.table_set))
        # The only connected split joins {t0,t1} with the island {t2}...
        # which is itself a Cartesian product, but at the *last* join:
        # postponed as far as possible.
        assert (frozenset(("t0", "t1")), frozenset(("t2",))) in [
            (a, b) if "t0" in a or "t1" in a else (b, a)
            for a, b in full_splits] or full_splits

    def test_optimization_succeeds(self, disconnected_query):
        result = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
        ).optimize(disconnected_query)
        assert result.entries
        for entry in result.entries:
            assert entry.plan.tables == disconnected_query.table_set

    def test_three_islands_optimize(self):
        """No join predicate at all: pure Cartesian products everywhere."""
        tables = [Table(f"i{k}", 100 + 10 * k, (Column("p", 10),))
                  for k in range(3)]
        catalog = Catalog.from_tables(tables)
        query = Query(catalog=catalog, tables=("i0", "i1", "i2"),
                      parametric_predicates=(
                          ParametricPredicate("i0", "p", 0),))
        result = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
        ).optimize(query)
        assert result.entries
        assert all(e.plan.tables == query.table_set
                   for e in result.entries)
