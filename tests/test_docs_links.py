"""Link check for the Markdown documentation.

Every relative link in ``README.md`` and ``docs/*.md`` must resolve to
a file or directory inside the repository — a renamed module or moved
guide breaks these silently otherwise.  External (``http``/``mailto``)
links and GitHub-web relative URLs that escape the repository (the CI
badge's ``../../actions/...``) are out of scope.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing parenthesis.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link targets that are not local file references.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def _doc_files() -> list[Path]:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    return [REPO_ROOT / "README.md", *docs]


def _relative_links(doc: Path) -> list[str]:
    links = []
    for target in _LINK.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        links.append(target.split("#", 1)[0])
    return [link for link in links if link]


def test_doc_files_exist():
    docs = _doc_files()
    names = {doc.name for doc in docs}
    # The five guides must ship alongside the README.
    assert {"README.md", "architecture.md", "lp-substrate.md",
            "counters.md", "serving.md", "plan-store.md"} <= names


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda d: d.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            # Escapes the repo: a GitHub-web relative URL (e.g. the CI
            # badge's ../../actions/... link), not a local file.
            continue
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken relative links in {doc.name}: {broken}"


def test_readme_links_the_guides():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for guide in ("docs/architecture.md", "docs/lp-substrate.md",
                  "docs/counters.md", "docs/serving.md",
                  "docs/plan-store.md"):
        assert f"({guide})" in readme, f"README does not link {guide}"
