"""Tests for Pareto-plan-set serialization (the embedded-SQL artifact)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (PlanSelector, decode_plan_set, encode_result,
                        load_plan_set, optimize_cloud_query, save_result)
from repro.core.serialize import SerializationError
from repro.query import QueryGenerator


@pytest.fixture(scope="module")
def result():
    query = QueryGenerator(seed=71).generate(3, "chain", 1)
    return optimize_cloud_query(query, resolution=2)


@pytest.fixture(scope="module")
def stored(result):
    return decode_plan_set(encode_result(result))


class TestRoundTrip:
    def test_entry_count_preserved(self, result, stored):
        assert len(stored.entries) == len(result.entries)

    def test_plans_structurally_identical(self, result, stored):
        original = {e.plan.signature() for e in result.entries}
        reloaded = {e.plan.signature() for e in stored.entries}
        assert original == reloaded

    def test_cost_functions_evaluate_identically(self, result, stored):
        by_sig = {e.plan.signature(): e for e in result.entries}
        for entry in stored.entries:
            source = by_sig[entry.plan.signature()]
            for x in np.linspace(0, 1, 9):
                a = source.cost.evaluate([x])
                b = entry.cost.evaluate([x])
                for metric in a:
                    assert a[metric] == pytest.approx(b[metric],
                                                      rel=1e-12)

    def test_relevance_regions_match(self, result, stored):
        by_sig = {e.plan.signature(): e for e in result.entries}
        for entry in stored.entries:
            source = by_sig[entry.plan.signature()]
            for x in np.linspace(0.01, 0.99, 21):
                assert entry.relevant_at([x]) == \
                    source.region.contains_point([x])

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "pps.json"
        save_result(result, path)
        loaded = load_plan_set(path)
        assert len(loaded.entries) == len(result.entries)
        # The file is plain JSON.
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["version"] == 1


class TestStoredSelection:
    def test_selection_matches_live_selector(self, result, stored):
        live = PlanSelector(result)
        for x in ([0.2], [0.5], [0.8]):
            for weights in ({"time": 1.0}, {"fees": 1.0},
                            {"time": 1.0, "fees": 0.5}):
                live_pick = live.by_weighted_sum(x, weights)
                stored_plan, stored_cost = stored.select(x, weights)
                live_score = sum(weights.get(m, 0) * v
                                 for m, v in live_pick.cost.items())
                stored_score = sum(weights.get(m, 0) * v
                                   for m, v in stored_cost.items())
                assert stored_score == pytest.approx(live_score,
                                                     rel=1e-9)

    def test_frontier_sizes_match(self, result, stored):
        for x in ([0.3], [0.7]):
            assert len(stored.frontier(x)) == len(result.frontier_at(x))


class TestErrors:
    def test_version_mismatch(self):
        with pytest.raises(SerializationError):
            decode_plan_set({"version": 99, "entries": []})

    def test_unknown_plan_kind(self):
        doc = {"version": 1, "num_params": 1,
               "entries": [{"plan": {"kind": "cte"}, "cost": {},
                            "region": {"space": {"dim": 1,
                                                 "constraints": []},
                                       "cutouts": []}}]}
        with pytest.raises((SerializationError, ValueError, KeyError)):
            decode_plan_set(doc)
