"""Smoke tests: every example script must run to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    """Run one example script and return its stdout."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600, check=False)
    assert proc.returncode == 0, (
        f"{name} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Pareto frontier" in out
    assert "Fastest plan" in out


def test_cloud_tradeoffs():
    out = run_example("cloud_tradeoffs.py")
    assert "Figure 7" in out
    assert "RR:" in out
    assert "fastest plan under" in out


def test_embedded_sql():
    out = run_example("embedded_sql.py")
    assert "precision" in out
    assert "Dashboard policy" in out


def test_problem_analysis():
    out = run_example("problem_analysis.py")
    assert "figure4" in out
    assert "M3b holds" in out


def test_baseline_comparison():
    out = run_example("baseline_comparison.py")
    assert "classical" in out.lower()
    assert "MPQ" in out


def test_execute_plans():
    out = run_example("execute_plans.py")
    assert "executed" in out
    assert "identical row counts: True" in out


def test_plan_diagrams():
    out = run_example("plan_diagrams.py")
    assert "legend" in out
    assert "(x0 rightwards, x1 upwards)" in out


def test_batch_service():
    out = run_example("batch_service.py")
    assert "Cold batch" in out
    assert "Warm batch" in out
    assert "cache hits=4" in out
    assert "pool spawns=0" in out  # serial mode never spawns workers


def test_streaming_service():
    out = run_example("streaming_service.py")
    assert "Registered scenarios" in out
    assert "cloud" in out and "approx" in out
    assert "submit() future resolved" in out
    assert "approx scenario: [ok]" in out


def test_serving_gateway():
    out = run_example("serving_gateway.py")
    assert "Gateway up at http://" in out
    assert "HTTP 429, retry after" in out
    assert "guarantee=  1.00x" in out  # stream reached the exact rung
    assert "[partial]" in out          # deadline returned a guarantee
    assert "sticky_hits=" in out


def test_anytime_service():
    out = run_example("anytime_service.py")
    assert "alpha=0.5" in out
    assert "guarantee= 1.000x" in out  # final rung is exact
    assert "status=partial" in out
    assert "second call: completed" in out
