"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.lp import LinearProgramSolver, LPStats


@pytest.fixture
def lp_stats() -> LPStats:
    """A fresh LP counter."""
    return LPStats()


@pytest.fixture
def solver(lp_stats) -> LinearProgramSolver:
    """A solver charging the fresh counter (default hybrid backend)."""
    return LinearProgramSolver(stats=lp_stats)


@pytest.fixture(params=["scipy", "simplex"])
def any_backend_solver(request) -> LinearProgramSolver:
    """A solver parameterized over both LP backends."""
    return LinearProgramSolver(stats=LPStats(), backend=request.param)
