"""Tests for the CQ / MQ / PQ baselines and their MPQ consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (ClassicalOptimizer, MQOptimizer, PQOptimizer,
                             SingleMetricModel, pareto_filter)
from repro.cloud import CloudCostModel
from repro.core import PWLRRPA
from repro.query import QueryGenerator

from tests.helpers import dominates, enumerate_all_plans, plan_cost_at


@pytest.fixture
def query():
    return QueryGenerator(seed=13).generate(3, "chain", 1)


@pytest.fixture
def model(query):
    return CloudCostModel(query, resolution=2)


class TestParetoFilter:
    def test_keeps_incomparable(self):
        cands = [({"a": 1.0, "b": 2.0}, "p1"),
                 ({"a": 2.0, "b": 1.0}, "p2")]
        assert len(pareto_filter(cands)) == 2

    def test_drops_dominated(self):
        cands = [({"a": 1.0, "b": 1.0}, "p1"),
                 ({"a": 2.0, "b": 2.0}, "p2")]
        kept = pareto_filter(cands)
        assert len(kept) == 1
        assert kept[0][1] == "p1"

    def test_ties_keep_first(self):
        cands = [({"a": 1.0}, "first"), ({"a": 1.0}, "second")]
        kept = pareto_filter(cands)
        assert len(kept) == 1
        assert kept[0][1] == "first"

    def test_later_dominator_displaces(self):
        cands = [({"a": 2.0, "b": 2.0}, "bad"),
                 ({"a": 1.0, "b": 1.0}, "good")]
        kept = pareto_filter(cands)
        assert [p for __, p in kept] == ["good"]


class TestClassicalOptimizer:
    def test_finds_cheapest_plan(self, query, model):
        x = [0.4]
        result = ClassicalOptimizer(model, x,
                                    weights={"time": 1.0}).optimize(query)
        # Brute force: no plan may be cheaper on time at x.
        for plan in enumerate_all_plans(query, model):
            assert result.cost <= plan_cost_at(model, plan, x)["time"] + 1e-9

    def test_weighted_objective(self, query, model):
        x = [0.6]
        weights = {"time": 1.0, "fees": 2.0}
        result = ClassicalOptimizer(model, x, weights).optimize(query)
        for plan in enumerate_all_plans(query, model):
            cost = plan_cost_at(model, plan, x)
            scalar = cost["time"] + 2.0 * cost["fees"]
            assert result.cost <= scalar + 1e-9

    def test_metric_breakdown_consistent(self, query, model):
        x = [0.5]
        result = ClassicalOptimizer(model, x,
                                    weights={"time": 1.0}).optimize(query)
        direct = plan_cost_at(model, result.plan, x)
        assert result.metric_costs["time"] == pytest.approx(direct["time"])
        assert result.metric_costs["fees"] == pytest.approx(direct["fees"])


class TestMQOptimizer:
    def test_frontier_is_pareto(self, query, model):
        x = [0.3]
        result = MQOptimizer(model, x).optimize(query)
        assert result.frontier
        for i, (a, __) in enumerate(result.frontier):
            for j, (b, __) in enumerate(result.frontier):
                if i == j:
                    continue
                assert not (all(a[m] <= b[m] + 1e-12 for m in a)
                            and any(a[m] < b[m] - 1e-12 for m in a))

    def test_frontier_complete(self, query, model):
        """Every plan is dominated by some frontier member at x."""
        x = [0.7]
        result = MQOptimizer(model, x).optimize(query)
        for plan in enumerate_all_plans(query, model):
            cost = plan_cost_at(model, plan, x)
            assert any(dominates(f, cost) for f, __ in result.frontier)

    def test_contains_classical_optimum(self, query, model):
        x = [0.5]
        mq = MQOptimizer(model, x).optimize(query)
        classical = ClassicalOptimizer(model, x,
                                       weights={"time": 1.0}).optimize(query)
        best_time = min(f["time"] for f, __ in mq.frontier)
        assert best_time == pytest.approx(classical.cost, rel=1e-9)

    def test_mpq_covers_mq_frontier(self, query, model):
        """PWL-RRPA's plan set must dominate MQ's frontier at any x
        (evaluated on the PWL-approximated costs both share at grid
        vertices)."""
        x = [0.5]  # a grid vertex of resolution 2: PWL approx exact here
        mq = MQOptimizer(model, x).optimize(query)
        mpq = PWLRRPA().optimize_with_model(query, model)
        for frontier_cost, __ in mq.frontier:
            assert any(dominates(e.cost.evaluate(x), frontier_cost)
                       for e in mpq.entries), (
                f"MPQ misses MQ frontier point {frontier_cost}")


class TestPQOptimizer:
    def test_single_metric_model_restricts(self, query, model):
        sm = SingleMetricModel(model, "time")
        assert [m.name for m in sm.metrics] == ["time"]
        plan_cost = sm.scan_cost_polynomials(
            __import__("repro.plans", fromlist=["ScanPlan"]).ScanPlan(
                table=query.tables[0], operator=model.scan_operators(
                    query.tables[0])[0]))
        assert set(plan_cost) == {"time"}

    def test_unknown_metric_rejected(self, model):
        with pytest.raises(ValueError):
            SingleMetricModel(model, "energy")

    def test_pq_plans_time_optimal_somewhere(self, query):
        pq = PQOptimizer(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2),
            metric="time")
        result = pq.optimize(query)
        assert result.entries
        model = CloudCostModel(query, resolution=2)
        all_plans = enumerate_all_plans(query, model)
        # For each sampled x, the PQ set contains a time-optimal plan.
        for x in (np.array([v]) for v in np.linspace(0.02, 0.98, 13)):
            best_any = min(
                model.plan_cost(p).evaluate(x)["time"] for p in all_plans)
            best_kept = min(e.cost.evaluate(x)["time"]
                            for e in result.entries)
            assert best_kept == pytest.approx(best_any, rel=1e-7)

    def test_pq_set_smaller_than_mpq(self, query):
        """One metric prunes far more aggressively than two."""
        pq = PQOptimizer(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2),
            metric="time").optimize(query)
        mpq = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
        ).optimize(query)
        assert len(pq.entries) <= len(mpq.entries)
