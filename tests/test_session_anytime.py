"""Tests for the session-level anytime API and the LP-memo merge-back.

Covers:

* ``OptimizerSession.optimize(precision=..., budget=...)`` on the serial
  and pooled paths — budget expiry mid-run returns a valid ``"partial"``
  guarantee without tearing the pool down (cooperative cancellation),
  including under the ``spawn`` start method;
* ``OptimizerSession.optimize_iter`` — successively tighter plan sets
  streamed as progress events, with the pooled replay matching the live
  serial trail;
* warm-start alpha tags — a partial (coarse) cache entry never serves an
  exact request, and a tighter entry is never overwritten by a coarser
  one;
* worker LP-memo deltas merged back into the session memo, with the
  session counters showing the cross-batch gain.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api import Budget, OptimizerSession, WarmStartCache
from repro.query import QueryGenerator


def make_query(seed: int = 0, num_tables: int = 4):
    return QueryGenerator(seed=seed).generate(num_tables, "chain", 1)


#: LP budget that lands mid-ladder for the 4-table chain query above:
#: enough for the coarse rungs, not for the exact one.
MID_LADDER_LPS = 150


def _hung_anytime(payload):
    """Worker stub (module-level: picklable): anytime payloads hang."""
    from repro.service import session as session_module
    if payload[6] is not None:
        import time as _time
        _time.sleep(30.0)
    return session_module._real_optimize_payload(payload)


def _poisoned_anytime(payload):
    """Worker stub (module-level: picklable): anytime payloads raise."""
    from repro.service import session as session_module
    if payload[6] is not None:
        raise RuntimeError("poisoned anytime run")
    return session_module._real_optimize_payload(payload)


class TestAnytimeOptimize:
    def test_serial_budget_expiry_returns_valid_guarantee(self):
        query = make_query(seed=7)
        with OptimizerSession("cloud", warm_start=False) as session:
            partial = session.optimize(query, precision=0.0,
                                       budget=Budget(lps=MID_LADDER_LPS))
            exact = session.optimize(query)
        assert partial.status == "partial"
        assert partial.ok
        assert partial.alpha > 0.0
        assert partial.guarantee > 1.0
        assert partial.plan_set is not None
        assert partial.plan_set.alpha == partial.alpha
        # The guarantee is real: at sample points, the partial set covers
        # the exact frontier within the reported factor on every metric.
        for x in ([0.1], [0.5], [0.9]):
            for metric in ("time", "fees"):
                best_exact = min(e.cost.evaluate(x)[metric]
                                 for e in exact.plan_set.entries)
                best_partial = min(e.cost.evaluate(x)[metric]
                                   for e in partial.plan_set.entries)
                assert (best_partial
                        <= best_exact * partial.guarantee + 1e-9)

    def test_zero_budget_times_out_without_plan_set(self):
        query = make_query(seed=7)
        with OptimizerSession("cloud", warm_start=False) as session:
            item = session.optimize(query, precision=0.0,
                                    budget=Budget(lps=0))
        assert item.status == "timeout"
        assert not item.ok
        assert item.plan_set is None
        assert item.events  # the trail still shows what happened

    def test_unbudgeted_precision_runs_single_rung(self):
        query = make_query(seed=7, num_tables=3)
        with OptimizerSession("cloud", warm_start=False) as session:
            item = session.optimize(query, precision=0.25)
        assert item.status == "ok"
        assert item.alpha == 0.25
        rungs = [e for e in item.events if e.kind == "rung_completed"]
        assert len(rungs) == 1

    def test_precision_ladder_and_precision_must_agree(self):
        query = make_query(seed=7, num_tables=2)
        with OptimizerSession("cloud") as session, \
                pytest.raises(ValueError, match="end at precision"):
            session.optimize(query, precision=0.0,
                             precision_ladder=(0.5, 0.2))

    def test_pooled_budget_expiry_keeps_pool_alive(self):
        """Cooperative cancellation: the worker stops itself, the pool
        survives, and later calls reuse it."""
        query = make_query(seed=7)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as session:
            partial = session.optimize(query, precision=0.0,
                                       budget=Budget(lps=MID_LADDER_LPS))
            assert partial.status == "partial"
            assert partial.alpha > 0.0
            assert partial.plan_set is not None
            assert session.pool_spawns == 1
            items = session.map([query])
            assert [item.status for item in items] == ["ok"]
            assert session.pool_spawns == 1  # no teardown, no respawn

    def test_spawn_context_budget_expiry(self):
        """Satellite: the cooperative budget works under spawn too."""
        query = make_query(seed=7)
        ctx = multiprocessing.get_context("spawn")
        with OptimizerSession("cloud", workers=2, mp_context=ctx,
                              warm_start=False) as session:
            partial = session.optimize(query, precision=0.0,
                                       budget=Budget(lps=MID_LADDER_LPS))
            assert partial.status == "partial", partial.error
            assert partial.alpha > 0.0
            assert session.pool_spawns == 1

    def test_session_deadline_backstops_hung_anytime_worker(self,
                                                            monkeypatch):
        """timeout_seconds still applies to pooled anytime calls: a hung
        worker yields a 'timeout' item and is recycled, like map()."""
        from repro.service import session as session_module

        real = session_module._optimize_payload
        monkeypatch.setattr(session_module, "_real_optimize_payload",
                            real, raising=False)
        monkeypatch.setattr(session_module, "_optimize_payload",
                            _hung_anytime)
        query = make_query(seed=7, num_tables=2)
        with OptimizerSession("cloud", workers=2, timeout_seconds=1.0,
                              warm_start=False) as session:
            item = session.optimize(query, precision=0.0,
                                    budget=Budget(seconds=30.0))
            assert item.status == "timeout"
            assert session._pool is None  # stuck worker recycled
            monkeypatch.setattr(session_module, "_optimize_payload",
                                real)
            assert session.map([query])[0].status == "ok"

    def test_pooled_matches_serial_anytime_result(self):
        query = make_query(seed=9, num_tables=3)
        with OptimizerSession("cloud", warm_start=False) as serial:
            a = serial.optimize(query, precision=0.1)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as pooled:
            b = pooled.optimize(query, precision=0.1)
        assert (a.status, a.alpha, a.guarantee) == (b.status, b.alpha,
                                                    b.guarantee)
        assert len(a.plan_set.entries) == len(b.plan_set.entries)


class TestOptimizeIter:
    def test_serial_rungs_tighten(self):
        query = make_query(seed=13)
        with OptimizerSession("cloud", warm_start=False) as session:
            exact = session.optimize(query)
            rungs = [e for e in session.optimize_iter(query)
                     if e.kind == "rung_completed"]
        assert [e.alpha for e in rungs] == [0.5, 0.2, 0.05, 0.0]
        assert all(e.plan_set is not None for e in rungs)
        counts = [e.plan_count for e in rungs]
        assert counts == sorted(counts)
        # The final rung serves the same plan as the exact path.
        weights = {"time": 1.0, "fees": 0.3}
        assert (rungs[-1].plan_set.select([0.4], weights)[1]
                == exact.plan_set.select([0.4], weights)[1])

    def test_pooled_replay_matches_serial_trail(self):
        query = make_query(seed=13, num_tables=3)
        ladder = (0.5, 0.0)
        with OptimizerSession("cloud", warm_start=False) as serial:
            live = list(serial.optimize_iter(query,
                                             precision_ladder=ladder))
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as pooled:
            replay = list(pooled.optimize_iter(query,
                                               precision_ladder=ladder))
        assert [e.kind for e in replay] == [e.kind for e in live]
        live_rungs = [e for e in live if e.kind == "rung_completed"]
        replay_rungs = [e for e in replay if e.kind == "rung_completed"]
        assert ([(e.alpha, e.plan_count) for e in replay_rungs]
                == [(e.alpha, e.plan_count) for e in live_rungs])
        assert all(e.plan_set is not None for e in replay_rungs)

    def test_pooled_events_arrive_before_run_finishes(self):
        """Regression: pooled optimize_iter streams live, not replayed.

        The first events must be delivered while the worker task is
        still executing — before the live-queue fix the whole trail was
        replayed only after the pooled run finished.
        """
        query = make_query(seed=3, num_tables=4)
        ladder = (0.5, 0.2, 0.0)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as session:
            iterator = session.optimize_iter(query,
                                             precision_ladder=ladder)
            first = next(iterator)
            assert first.kind == "rung_started"
            raw = session._live_stream_future
            assert raw is not None
            # The run has three rungs of DP work ahead of it; receiving
            # the opening event after completion (the replay behavior)
            # would find the future already resolved here.
            assert not raw.done()
            events = [first]
            in_flight_rung_done = False
            for event in iterator:
                if event.kind == "rung_completed" and not raw.done():
                    in_flight_rung_done = True
                events.append(event)
            # At least one completed rung streamed out mid-run (the
            # coarse rungs finish long before the exact one).
            assert in_flight_rung_done
        # Liveness must not change the trail: same events as serial.
        with OptimizerSession("cloud", warm_start=False) as serial:
            live = list(serial.optimize_iter(query,
                                             precision_ladder=ladder))
        assert [e.kind for e in events] == [e.kind for e in live]
        assert ([(e.rung, e.alpha, e.plan_count) for e in events]
                == [(e.rung, e.alpha, e.plan_count) for e in live])
        pooled_rungs = [e for e in events if e.kind == "rung_completed"]
        assert all(e.plan_set is not None for e in pooled_rungs)

    def test_pooled_live_stream_feeds_warm_start_cache(self):
        """Each completed rung is cached under its alpha tag as it
        streams (the serial contract), not only at run end."""
        query = make_query(seed=3, num_tables=3)
        cache = WarmStartCache()
        with OptimizerSession("cloud", workers=2,
                              cache=cache) as session:
            iterator = session.optimize_iter(query,
                                             precision_ladder=(0.5, 0.0))
            for event in iterator:
                if event.kind == "rung_completed" and event.alpha > 0:
                    break  # abandon mid-stream after the coarse rung
            # The coarse rung made it into the cache (tagged with its
            # alpha) even though the iterator was dropped before the
            # exact rung finished.
            signature = session._signature(
                query, "cloud", options=session._anytime_options(0.0))
            entry = cache.get_entry(signature)
        assert entry is not None
        assert entry[1] == 0.5

    def test_budget_spans_whole_ladder(self):
        query = make_query(seed=13)
        with OptimizerSession("cloud", warm_start=False) as session:
            events = list(session.optimize_iter(
                query, budget=Budget(lps=MID_LADDER_LPS)))
        assert events[-1].kind == "budget_exhausted"
        rungs = [e for e in events if e.kind == "rung_completed"]
        assert rungs  # coarse rungs completed before exhaustion
        assert rungs[-1].alpha > 0.0

    def test_cached_hit_collapses_ladder(self):
        query = make_query(seed=13, num_tables=3)
        with OptimizerSession("cloud") as session:
            list(session.optimize_iter(query))  # populates the cache
            events = list(session.optimize_iter(query))
        assert [e.kind for e in events] == ["rung_completed"]
        assert events[0].alpha == 0.0
        assert events[0].plan_set is not None

    def test_invalid_ladder_rejected(self):
        query = make_query(seed=13, num_tables=2)
        with OptimizerSession("cloud") as session, \
                pytest.raises(ValueError, match="decreasing"):
            list(session.optimize_iter(query,
                                       precision_ladder=(0.1, 0.5)))

    def test_pooled_worker_failure_raises(self, monkeypatch):
        """A worker-side failure must not look like an empty (successful)
        event stream — the serial path raises, so the pooled one must
        too."""
        from repro.errors import OptimizationError
        from repro.service import session as session_module

        monkeypatch.setattr(session_module, "_real_optimize_payload",
                            session_module._optimize_payload,
                            raising=False)
        monkeypatch.setattr(session_module, "_optimize_payload",
                            _poisoned_anytime)
        query = make_query(seed=13, num_tables=2)
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as session, \
                pytest.raises(OptimizationError, match="poisoned"):
            list(session.optimize_iter(query,
                                       precision_ladder=(0.5, 0.0)))


class TestWarmStartAlphaTags:
    def test_partial_entry_does_not_serve_exact_request(self):
        query = make_query(seed=7)
        with OptimizerSession("cloud") as session:
            partial = session.optimize(query, precision=0.0,
                                       budget=Budget(lps=MID_LADDER_LPS))
            assert partial.status == "partial"
            # Same signature, but the cached entry is tagged with the
            # coarse rung alpha: the exact request must re-optimize.
            exact = session.optimize(query, precision=0.0)
            assert exact.status == "ok"
            assert exact.alpha == 0.0
            # Now the exact entry is cached and served.
            again = session.optimize(query, precision=0.0)
            assert again.status == "cached"
            assert again.alpha == 0.0

    def test_coarse_put_never_overwrites_tighter_entry(self):
        cache = WarmStartCache()
        exact_doc = {"version": 1, "alpha": 0.0, "entries": []}
        coarse_doc = {"version": 1, "alpha": 0.5, "entries": []}
        cache.put("sig", exact_doc, alpha=0.0)
        cache.put("sig", coarse_doc, alpha=0.5)
        assert cache.get_entry("sig") == (exact_doc, 0.0)

    def test_get_honors_max_alpha(self):
        cache = WarmStartCache()
        doc = {"version": 1, "entries": []}
        cache.put("sig", doc, alpha=0.2)
        assert cache.get("sig") == doc  # permissive default
        assert cache.get("sig", max_alpha=0.5) == doc
        assert cache.get("sig", max_alpha=0.1) is None
        assert cache.get("sig", max_alpha=0.2) == doc

    def test_disk_tier_preserves_alpha_tag(self, tmp_path):
        writer = WarmStartCache(directory=tmp_path)
        doc = {"version": 1, "entries": []}
        writer.put("sig", doc, alpha=0.25)
        reader = WarmStartCache(directory=tmp_path)
        assert reader.get_entry("sig") == (doc, 0.25)
        assert reader.get("sig", max_alpha=0.0) is None
        # A tighter write replaces it; a coarser one afterwards does not.
        writer.put("sig", doc, alpha=0.0)
        writer.put("sig", doc, alpha=0.5)
        fresh = WarmStartCache(directory=tmp_path)
        assert fresh.get_entry("sig") == (doc, 0.0)

    def test_shared_directory_coherence_across_processes(self, tmp_path):
        """A tighter entry on disk (another process) vetoes a coarser
        put in both tiers, and a too-coarse memory entry falls back to
        the tighter disk entry on read."""
        doc_exact = {"version": 1, "alpha": 0.0, "entries": []}
        doc_coarse = {"version": 1, "alpha": 0.5, "entries": []}
        other = WarmStartCache(directory=tmp_path)
        other.put("sig", doc_exact, alpha=0.0)
        # A second process with a cold memory tier must not shadow the
        # exact disk entry with its coarse partial result.
        mine = WarmStartCache(directory=tmp_path)
        mine.put("sig", doc_coarse, alpha=0.5)
        assert mine.get("sig", max_alpha=0.0) == doc_exact
        # Even with a coarse entry already in memory, an exact request
        # finds the tighter disk entry written meanwhile.
        late = WarmStartCache()  # memory only at first
        late.put("sig", doc_coarse, alpha=0.5)
        late.directory = str(tmp_path)
        assert late.get("sig", max_alpha=0.0) == doc_exact

    def test_legacy_bare_disk_entry_reads_as_exact(self, tmp_path):
        import json
        doc = {"version": 1, "entries": []}
        (tmp_path / "sig.json").write_text(json.dumps(doc))
        cache = WarmStartCache(directory=tmp_path)
        assert cache.get_entry("sig") == (doc, 0.0)
        assert cache.get("sig", max_alpha=0.0) == doc


class TestLpMemoMergeBack:
    def test_pooled_deltas_merge_into_session_memo(self):
        """Satellite: worker LP-memo deltas flow back to the session."""
        queries = [make_query(seed=s, num_tables=3) for s in range(3)]
        with OptimizerSession("cloud", workers=2,
                              warm_start=False) as session:
            session.map(queries[:2])
            assert session.lp_memo_merges > 0
            merged_first = session.lp_memo_merged_entries
            assert merged_first > 0
            assert len(session.lp_memo) > 0
            hits_first = session.lp_cache_hits_total
            # A later batch ships the (grown) memo nowhere new — the pool
            # is already up — but its results keep merging deltas and the
            # counters keep showing the cross-batch picture.
            session.map(queries[2:])
            assert session.lp_memo_merges > 2
            assert session.lp_memo_merged_entries >= merged_first
            assert session.lp_cache_hits_total >= hits_first

    def test_serial_runs_do_not_echo_the_session_memo(self):
        """In serial mode the installed memo IS the session memo; the
        delta drain must not re-merge (or even track) its own inserts."""
        query = make_query(seed=1, num_tables=3)
        with OptimizerSession("cloud", warm_start=False) as session:
            item = session.optimize(query)
            assert item.status == "ok"
            assert session.lp_memo_merges == 0
            assert len(session.lp_memo) > 0

    def test_delta_tracking_cache_semantics(self):
        from repro.lp import LPResultCache

        plain = LPResultCache(8)
        plain.put(("k1",), "r1")
        assert plain.drain_delta() == []  # tracking off by default

        tracked = LPResultCache(8, track_delta=True)
        assert tracked.merge([(("seed",), "r0")]) == 1
        tracked.put(("k1",), "r1")
        tracked.put(("k2",), "r2")
        delta = tracked.drain_delta()
        # Seeded entries are not deltas; fresh inserts are, once.
        assert delta == [(("k1",), "r1"), (("k2",), "r2")]
        assert tracked.drain_delta() == []
        tracked.put(("k3",), "r3")
        assert tracked.drain_delta(limit=1) == [(("k3",), "r3")]
