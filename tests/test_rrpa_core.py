"""Core optimizer tests: enumeration, grid backend, PWL-RRPA behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudCostModel
from repro.core import (GridBackend, PWLRRPA, PWLRRPAOptions, RRPA,
                        count_considered_splits, make_grid,
                        optimize_cloud_query, splits, subsets_in_size_order)
from repro.plans import ScanPlan
from repro.query import QueryGenerator

from tests.helpers import enumerate_all_plans


class TestEnumeration:
    def test_chain_subsets_are_contiguous(self):
        q = QueryGenerator(seed=1).generate(4, "chain", 1)
        subsets = list(subsets_in_size_order(q))
        # Chain of 4: contiguous runs only -> 3 + 2 + 1 = 6 subsets.
        assert len(subsets) == 6
        sizes = [len(s) for s in subsets]
        assert sizes == sorted(sizes)

    def test_star_subsets_contain_hub(self):
        q = QueryGenerator(seed=1).generate(4, "star", 1)
        hub = q.tables[0]
        for subset in subsets_in_size_order(q):
            if len(subset) >= 2:
                assert hub in subset

    def test_splits_are_connected_for_chain(self):
        q = QueryGenerator(seed=1).generate(4, "chain", 1)
        for subset in subsets_in_size_order(q):
            for left, right in splits(q, subset):
                assert left | right == subset
                assert not (left & right)
                assert q.join_graph.split_is_connected(left, right)

    def test_splits_unordered_unique(self):
        q = QueryGenerator(seed=1).generate(5, "chain", 1)
        for subset in subsets_in_size_order(q):
            seen = set()
            for left, right in splits(q, subset):
                key = frozenset((left, right))
                assert key not in seen
                seen.add(key)

    def test_split_counts_star_vs_chain(self):
        chain = QueryGenerator(seed=1).generate(6, "chain", 1)
        star = QueryGenerator(seed=1).generate(6, "star", 1)
        # Star queries admit far more connected subsets/splits (Ono-Lohman).
        assert count_considered_splits(star) > count_considered_splits(
            chain)


class TestGridBackend:
    def optimize(self, query, points_per_axis=5):
        model = CloudCostModel(query, resolution=2)
        backend = GridBackend(query, model,
                              points=make_grid(max(1, query.num_params),
                                               points_per_axis))
        return RRPA(backend).optimize(query), model, backend

    def test_pareto_set_complete_on_grid(self):
        """Theorem 3 on the finite grid: every plan is dominated by a
        kept plan at every grid point."""
        query = QueryGenerator(seed=2).generate(3, "chain", 1)
        result, model, backend = self.optimize(query)
        all_plans = enumerate_all_plans(query, model)
        kept_costs = [entry.cost for entry in result.entries]
        for plan in all_plans:
            polys = model.plan_cost_polynomials(plan)
            for idx, x in enumerate(backend.points):
                this_cost = {m: p.evaluate(x) for m, p in polys.items()}
                assert any(
                    all(kc.values[m][idx] <= this_cost[m] + 1e-9
                        for m in this_cost)
                    for kc in kept_costs), (
                    f"no dominating plan at grid point {x}")

    def test_relevance_mapping_property_on_grid(self):
        """Entries whose RR contains x must dominate all plans at x."""
        query = QueryGenerator(seed=3).generate(3, "chain", 1)
        result, model, backend = self.optimize(query)
        all_plans = enumerate_all_plans(query, model)
        for idx, x in enumerate(backend.points):
            relevant = [e for e in result.entries if e.region.mask[idx]]
            assert relevant, f"no relevant plan at {x}"
            for plan in all_plans:
                polys = model.plan_cost_polynomials(plan)
                cost = {m: p.evaluate(x) for m, p in polys.items()}
                assert any(
                    all(e.cost.values[m][idx] <= cost[m] + 1e-9
                        for m in cost) for e in relevant)

    def test_single_point_grid_is_mq(self):
        """With one grid point the grid backend degenerates to MQ."""
        query = QueryGenerator(seed=4).generate(3, "chain", 1)
        model = CloudCostModel(query, resolution=2)
        backend = GridBackend(query, model,
                              points=np.array([[0.5]]))
        result = RRPA(backend).optimize(query)
        # At a single point, kept plans must be mutually non-dominating.
        for i, a in enumerate(result.entries):
            for j, b in enumerate(result.entries):
                if i == j:
                    continue
                a_vals = a.cost.evaluate_index(0)
                b_vals = b.cost.evaluate_index(0)
                strictly = (all(a_vals[m] <= b_vals[m] + 1e-12
                                for m in a_vals)
                            and any(a_vals[m] < b_vals[m] - 1e-12
                                    for m in a_vals))
                assert not strictly

    def test_single_table_query(self):
        query = QueryGenerator(seed=5).generate(1, "chain", 1)
        result, model, backend = self.optimize(query)
        assert result.entries
        assert all(isinstance(e.plan, ScanPlan) for e in result.entries)


class TestPWLRRPA:
    def test_stats_populated(self):
        query = QueryGenerator(seed=6).generate(3, "chain", 1)
        result = optimize_cloud_query(query, resolution=2)
        stats = result.stats
        assert stats.plans_created > 0
        assert stats.plans_inserted >= len(result.entries)
        assert stats.lps_solved > 0
        assert stats.optimization_seconds > 0
        assert stats.plans_created == (stats.plans_inserted
                                       + stats.plans_discarded_new)

    def test_pareto_entries_have_nonempty_regions(self):
        query = QueryGenerator(seed=7).generate(3, "chain", 1)
        result = optimize_cloud_query(query, resolution=2)
        xs = np.linspace(0.02, 0.98, 49)
        for entry in result.entries:
            assert any(entry.region.contains_point([x]) for x in xs), \
                "kept plan has an empty-looking relevance region"

    def test_every_point_has_relevant_plan(self):
        query = QueryGenerator(seed=8).generate(3, "chain", 1)
        result = optimize_cloud_query(query, resolution=2)
        for x in np.linspace(0.0, 1.0, 21):
            assert result.plans_for([x])

    def test_frontier_nonempty_and_mutually_nondominating(self):
        query = QueryGenerator(seed=9).generate(4, "chain", 1)
        result = optimize_cloud_query(query, resolution=2)
        for x in (0.1, 0.5, 0.9):
            frontier = result.frontier_at([x])
            assert frontier
            for i, (__, a) in enumerate(frontier):
                for j, (__, b) in enumerate(frontier):
                    if i == j:
                        continue
                    assert not (all(a[m] <= b[m] for m in a)
                                and any(a[m] < b[m] for m in a))

    def test_dp_table_has_all_connected_subsets(self):
        query = QueryGenerator(seed=10).generate(4, "chain", 1)
        result = optimize_cloud_query(query, resolution=2)
        for subset in subsets_in_size_order(query):
            assert subset in result.dp_table
            assert result.dp_table[subset]

    def test_factoryless_optimizer_rejects(self):
        with pytest.raises(ValueError):
            PWLRRPA().optimize(
                QueryGenerator(seed=1).generate(2, "chain", 1))

    def test_options_respected(self):
        query = QueryGenerator(seed=11).generate(3, "chain", 1)
        with_points = optimize_cloud_query(
            query, resolution=2,
            options=PWLRRPAOptions(use_relevance_points=True))
        without_points = optimize_cloud_query(
            query, resolution=2,
            options=PWLRRPAOptions(use_relevance_points=False))
        assert with_points.stats.emptiness_checks_skipped > 0
        assert without_points.stats.emptiness_checks_skipped == 0
        # Same final plan count either way (the refinement is semantic-
        # preserving).
        assert len(with_points.entries) == len(without_points.entries)

    def test_convexity_strategy_sound(self):
        """Algorithm 2's convexity-based emptiness keeps a superset."""
        query = QueryGenerator(seed=12).generate(3, "chain", 1)
        difference = optimize_cloud_query(
            query, resolution=2,
            options=PWLRRPAOptions(emptiness_strategy="difference"))
        convexity = optimize_cloud_query(
            query, resolution=2,
            options=PWLRRPAOptions(emptiness_strategy="convexity"))
        diff_sigs = {e.plan.signature() for e in difference.entries}
        conv_sigs = {e.plan.signature() for e in convexity.entries}
        assert diff_sigs <= conv_sigs
