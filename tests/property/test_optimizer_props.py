"""Property-based tests over randomly generated optimization problems."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud import CloudCostModel
from repro.core import GridBackend, PWLRRPA, RRPA, make_grid
from repro.query import QueryGenerator


@st.composite
def small_queries(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_tables = draw(st.integers(min_value=1, max_value=3))
    shape = draw(st.sampled_from(["chain", "star"]))
    num_params = draw(st.integers(min_value=0,
                                  max_value=min(1, num_tables)))
    return QueryGenerator(seed=seed).generate(num_tables, shape,
                                              num_params)


class TestOptimizerInvariants:
    @settings(max_examples=12, deadline=None)
    @given(small_queries())
    def test_pwl_rrpa_invariants(self, query):
        model = CloudCostModel(query, resolution=1)
        result = PWLRRPA().optimize_with_model(query, model)
        stats = result.stats
        # Plan accounting balances.
        assert stats.plans_created == (stats.plans_inserted
                                       + stats.plans_discarded_new)
        assert stats.plans_inserted >= len(result.entries)
        # The final set is non-empty and every plan joins all tables.
        assert result.entries
        for entry in result.entries:
            assert entry.plan.tables == query.table_set
        # Every sampled parameter point has a relevant plan.
        for x in np.linspace(0.05, 0.95, 5):
            assert result.plans_for([x])

    @settings(max_examples=12, deadline=None)
    @given(small_queries())
    def test_grid_rrpa_frontier_mutually_nondominated(self, query):
        model = CloudCostModel(query, resolution=1)
        backend = GridBackend(query, model, points=make_grid(
            max(1, query.num_params), points_per_axis=4))
        result = RRPA(backend).optimize(query)
        for idx in range(backend.num_points):
            relevant = [e for e in result.entries if e.region.mask[idx]]
            assert relevant
            for i, a in enumerate(relevant):
                for b in relevant[i + 1:]:
                    av = a.cost.evaluate_index(idx)
                    bv = b.cost.evaluate_index(idx)
                    a_strict = (all(av[m] <= bv[m] + 1e-12 for m in av)
                                and any(av[m] < bv[m] - 1e-12
                                        for m in av))
                    b_strict = (all(bv[m] <= av[m] + 1e-12 for m in av)
                                and any(bv[m] < av[m] - 1e-12
                                        for m in av))
                    # Two plans both relevant at a point cannot strictly
                    # dominate one another there.
                    assert not (a_strict and b_strict)

    @settings(max_examples=10, deadline=None)
    @given(small_queries(),
           st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
    def test_frontier_scales_down_under_weights(self, query, x):
        """Any weighted-sum optimum must be on the frontier."""
        model = CloudCostModel(query, resolution=1)
        result = PWLRRPA().optimize_with_model(query, model)
        frontier = result.frontier_at([x])
        frontier_scores = [sum(c.values()) for __, c in frontier]
        all_scores = [sum(e.cost.evaluate([x]).values())
                      for e in result.entries]
        assert min(frontier_scores) <= min(all_scores) + 1e-9
