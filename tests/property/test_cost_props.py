"""Property-based tests for cost functions and dominance."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cost import (MultiObjectivePWL, ParamPolynomial, SharedPartition)
from repro.geometry import ConvexPolytope
from repro.lp import LinearProgramSolver, LPStats

finite = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                   allow_infinity=False)
positive = st.floats(min_value=0.0, max_value=5.0, allow_nan=False,
                     allow_infinity=False)


@st.composite
def polynomials_1d(draw):
    """Random polynomial c0 + c1*x + c2*x^2 over one parameter."""
    c0 = draw(finite)
    c1 = draw(finite)
    c2 = draw(finite)
    x = ParamPolynomial.variable(1, 0)
    return x * x * c2 + x * c1 + c0


class TestPolynomialAlgebra:
    @settings(max_examples=50)
    @given(polynomials_1d(), polynomials_1d(),
           st.floats(0.0, 1.0, allow_nan=False))
    def test_addition_pointwise(self, p, q, x):
        expected = p.evaluate([x]) + q.evaluate([x])
        assert abs((p + q).evaluate([x]) - expected) < 1e-9 * (
            1 + abs(expected))

    @settings(max_examples=50)
    @given(polynomials_1d(), polynomials_1d(),
           st.floats(0.0, 1.0, allow_nan=False))
    def test_multiplication_pointwise(self, p, q, x):
        expected = p.evaluate([x]) * q.evaluate([x])
        assert (p * q).evaluate([x]) == np.float64(expected) or \
            abs((p * q).evaluate([x]) - expected) < 1e-6 * (
                1 + abs(expected))

    @settings(max_examples=30)
    @given(polynomials_1d())
    def test_subtraction_gives_zero(self, p):
        assert (p - p).monomials == {}

    @settings(max_examples=30)
    @given(polynomials_1d(), st.floats(0.0, 1.0, allow_nan=False))
    def test_negation(self, p, x):
        assert (-p).evaluate([x]) == -p.evaluate([x])


class TestInterpolationProperties:
    @settings(max_examples=25, deadline=None)
    @given(polynomials_1d(), st.integers(min_value=1, max_value=5))
    def test_interpolation_exact_at_grid_vertices(self, poly, resolution):
        part = SharedPartition([0.0], [1.0], resolution)
        f = part.from_polynomial(poly)
        for k in range(resolution + 1):
            x = k / resolution
            assert abs(f.evaluate([x]) - poly.evaluate([x])) < 1e-7

    @settings(max_examples=25, deadline=None)
    @given(polynomials_1d(), polynomials_1d(),
           st.floats(0.0, 1.0, allow_nan=False))
    def test_interpolation_linear_in_function(self, p, q, x):
        """interp(p) + interp(q) == interp(p + q) on a shared partition."""
        part = SharedPartition([0.0], [1.0], 3)
        lhs = part.from_polynomial(p).add(part.from_polynomial(q))
        rhs = part.from_polynomial(p + q)
        assert abs(lhs.evaluate([x]) - rhs.evaluate([x])) < 1e-7


class TestDominanceProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(finite, min_size=4, max_size=4),
           st.lists(finite, min_size=4, max_size=4))
    def test_dominance_region_matches_pointwise(self, coeffs1, coeffs2):
        solver = LinearProgramSolver(stats=LPStats())
        space = ConvexPolytope.unit_box(1)
        c1 = MultiObjectivePWL.affine(
            space, {"m1": [coeffs1[0]], "m2": [coeffs1[1]]},
            {"m1": coeffs1[2], "m2": coeffs1[3]})
        c2 = MultiObjectivePWL.affine(
            space, {"m1": [coeffs2[0]], "m2": [coeffs2[1]]},
            {"m1": coeffs2[2], "m2": coeffs2[3]})
        polys = c1.dominance_polytopes(c2, solver)
        for x in np.linspace(0, 1, 21):
            inside = any(p.contains_point([x], tol=1e-7) for p in polys)
            pointwise = c1.dominates_at(c2, [x], tol=1e-7)
            if inside != pointwise:
                # Allow disagreement only near dominance boundaries.
                margin = min(
                    abs(c1.evaluate([x])[m] - c2.evaluate([x])[m])
                    for m in ("m1", "m2"))
                assert margin < 1e-4

    @settings(max_examples=20, deadline=None)
    @given(st.lists(finite, min_size=4, max_size=4))
    def test_self_dominance_total(self, coeffs):
        solver = LinearProgramSolver(stats=LPStats())
        space = ConvexPolytope.unit_box(1)
        c = MultiObjectivePWL.affine(
            space, {"m1": [coeffs[0]], "m2": [coeffs[1]]},
            {"m1": coeffs[2], "m2": coeffs[3]})
        polys = c.dominance_polytopes(c, solver)
        for x in np.linspace(0.05, 0.95, 10):
            assert any(p.contains_point([x]) for p in polys)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(positive, min_size=2, max_size=2),
           st.lists(positive, min_size=2, max_size=2),
           st.lists(positive, min_size=2, max_size=2))
    def test_dominance_transitive_pointwise(self, a, b, c):
        space = ConvexPolytope.unit_box(1)
        ca = MultiObjectivePWL.constant(space, {"m1": a[0], "m2": a[1]})
        cb = MultiObjectivePWL.constant(space, {"m1": b[0], "m2": b[1]})
        cc = MultiObjectivePWL.constant(space, {"m1": c[0], "m2": c[1]})
        x = [0.5]
        if ca.dominates_at(cb, x) and cb.dominates_at(cc, x):
            assert ca.dominates_at(cc, x, tol=1e-6)
