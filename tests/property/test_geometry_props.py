"""Property-based tests (hypothesis) for the geometry substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import (ConvexPolytope, LinearConstraint,
                            RelevanceRegion, box_simplices,
                            subtract_polytope, subtract_polytopes)
from repro.lp import LinearProgramSolver, LPStats


def fresh_solver() -> LinearProgramSolver:
    return LinearProgramSolver(stats=LPStats())


coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                   allow_infinity=False)


@st.composite
def boxes_1d(draw):
    a = draw(coords)
    b = draw(coords)
    lo, hi = min(a, b), max(a, b)
    return ConvexPolytope.box([lo], [hi + 1e-3])


@st.composite
def boxes_2d(draw):
    a1, b1 = sorted((draw(coords), draw(coords)))
    a2, b2 = sorted((draw(coords), draw(coords)))
    return ConvexPolytope.box([a1, a2], [b1 + 1e-3, b2 + 1e-3])


class TestConstraintProperties:
    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=2),
           st.floats(-10, 10))
    def test_normalization_preserves_halfspace(self, a, b):
        if all(abs(v) < 1e-9 for v in a):
            return
        c = LinearConstraint.make(a, b)
        rng = np.random.default_rng(0)
        for x in rng.uniform(-3, 3, size=(20, 2)):
            raw = float(np.dot(a, x)) <= b + 1e-7 * max(1, abs(b))
            norm = c.contains(x, tol=1e-7)
            assert raw == norm or abs(np.dot(a, x) - b) < 1e-5

    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=2),
           st.floats(-5, 5))
    def test_negation_covers_space(self, a, b):
        if all(abs(v) < 1e-9 for v in a):
            return
        c = LinearConstraint.make(a, b)
        n = c.negation()
        rng = np.random.default_rng(1)
        for x in rng.uniform(-3, 3, size=(20, 2)):
            assert c.contains(x) or n.contains(x)


class TestSubtractionProperties:
    @settings(max_examples=25, deadline=None)
    @given(boxes_1d(), boxes_1d())
    def test_pieces_disjoint_from_cut_interior(self, base, cut):
        solver = fresh_solver()
        pieces = subtract_polytope(base, cut, solver)
        rng = np.random.default_rng(2)
        for piece in pieces:
            assert base.contains_polytope(piece, solver)
        for x in rng.uniform(0, 1.01, size=(30, 1)):
            in_base = base.contains_point(x, tol=-1e-9)
            strictly_in_cut = cut.contains_point(x, tol=-1e-6)
            in_pieces = any(p.contains_point(x) for p in pieces)
            if in_base and not cut.contains_point(x, tol=1e-6):
                assert in_pieces
            if in_pieces:
                assert base.contains_point(x, tol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(boxes_2d(), min_size=1, max_size=3))
    def test_subtract_all_of_space_empties(self, cuts):
        solver = fresh_solver()
        base = ConvexPolytope.unit_box(2)
        pieces = subtract_polytopes(base, cuts + [base], solver)
        assert pieces == []

    @settings(max_examples=20, deadline=None)
    @given(boxes_2d())
    def test_subtracting_base_from_itself(self, box):
        solver = fresh_solver()
        assert subtract_polytope(box, box, solver) == []


class TestRelevanceRegionProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(boxes_1d(), min_size=0, max_size=4))
    def test_membership_matches_definition(self, cuts):
        solver = fresh_solver()
        space = ConvexPolytope.unit_box(1)
        rr = RelevanceRegion(space)
        for cut in cuts:
            rr.subtract(cut)
        rng = np.random.default_rng(3)
        for x in rng.uniform(0, 1, size=(30, 1)):
            expected = (space.contains_point(x)
                        and not any(c.contains_point(x)
                                    for c in rr.cutouts))
            assert rr.contains_point(x) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(boxes_1d(), min_size=1, max_size=4))
    def test_emptiness_iff_no_witness(self, cuts):
        solver = fresh_solver()
        rr = RelevanceRegion(ConvexPolytope.unit_box(1))
        for cut in cuts:
            rr.subtract(cut)
        empty = rr.is_empty(solver)
        witness = rr.witness(solver)
        assert empty == (witness is None)
        if witness is not None:
            assert rr.contains_point(witness)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(boxes_1d(), min_size=1, max_size=4),
           st.permutations(range(4)))
    def test_emptiness_order_invariant(self, cuts, order):
        solver = fresh_solver()
        ordered = [cuts[i % len(cuts)] for i in order[:len(cuts)]]
        rr1 = RelevanceRegion(ConvexPolytope.unit_box(1), cutouts=cuts)
        rr2 = RelevanceRegion(ConvexPolytope.unit_box(1), cutouts=ordered)
        # Same cutout multiset (up to duplication) -> same emptiness.
        if {frozenset(c.key() for c in cut.constraints)
                for cut in cuts} == {
                frozenset(c.key() for c in cut.constraints)
                for cut in ordered}:
            assert rr1.is_empty(solver) == rr2.is_empty(solver)


class TestSimplexGridProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=2))
    def test_simplices_cover_box(self, resolution, dim):
        simplices = box_simplices([0.0] * dim, [1.0] * dim, resolution)
        rng = np.random.default_rng(4)
        for x in rng.uniform(0, 1, size=(40, dim)):
            assert any(s.contains_point(x, tol=1e-9) for s in simplices)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=3))
    def test_interpolation_exact_for_affine(self, resolution):
        simplices = box_simplices([0.0, 0.0], [1.0, 1.0], resolution)
        w_true, b_true = np.array([2.0, -1.0]), 0.5
        for s in simplices:
            w, b = s.affine_interpolant(
                [float(w_true @ v + b_true) for v in s.vertices])
            assert np.allclose(w, w_true, atol=1e-8)
            assert abs(b - b_true) < 1e-8
