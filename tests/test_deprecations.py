"""Deprecation-shim semantics: caller attribution and once-per-callsite.

The three legacy entry points (``optimize_cloud_query``,
``optimize_with``, ``BatchOptimizer``) must attribute their
``DeprecationWarning`` to the *caller's* line (correct ``stacklevel``).
That attribution is also what makes Python's default ``"default"``
warning filter behave as once per callsite: the once-registry is keyed
by the warning's reported location, so a wrong stacklevel pins every
caller to one internal line and only the first caller ever sees the
warning.
"""

from __future__ import annotations

import warnings

from repro.cloud import CloudCostModel
from repro.core import PWLBackend, optimize_cloud_query, optimize_with
from repro.query import QueryGenerator
from repro.service import BatchOptimizer, BatchOptions


def _query():
    return QueryGenerator(seed=0).generate(2, "chain", 1)


def _call_optimize_cloud_query(query):
    return optimize_cloud_query(query, resolution=2)


def _call_optimize_with(query):
    return optimize_with(PWLBackend(CloudCostModel(query, resolution=2)),
                         query)


def _call_batch_optimizer():
    return BatchOptimizer(BatchOptions(workers=0))


SHIM_CALLS = [
    ("optimize_cloud_query", _call_optimize_cloud_query),
    ("optimize_with", _call_optimize_with),
    ("BatchOptimizer", _call_batch_optimizer),
]


class TestCallerAttribution:
    """Each shim's warning points at the calling frame, not the shim."""

    def _single_warning(self, invoke):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            invoke()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1, deprecations
        return deprecations[0]

    def test_optimize_cloud_query_points_at_caller(self):
        warning = self._single_warning(
            lambda: _call_optimize_cloud_query(_query()))
        assert warning.filename == __file__
        assert "OptimizerSession" in str(warning.message)

    def test_optimize_with_points_at_caller(self):
        warning = self._single_warning(
            lambda: _call_optimize_with(_query()))
        assert warning.filename == __file__
        assert "OptimizerSession" in str(warning.message)

    def test_batch_optimizer_points_at_caller(self):
        """Regression: the warning fires inside ``__post_init__``, one
        frame below the dataclass-generated ``__init__`` — stacklevel
        must skip both."""
        warning = self._single_warning(_call_batch_optimizer)
        assert warning.filename == __file__
        assert "OptimizerSession" in str(warning.message)


class TestOncePerCallsite:
    """Under the stock ``"default"`` filter each callsite warns once."""

    def test_repeat_calls_from_one_line_warn_once(self):
        query = _query()
        for name, invoke in SHIM_CALLS:
            with warnings.catch_warnings(record=True) as caught:
                warnings.resetwarnings()
                warnings.simplefilter("default")
                for __ in range(3):
                    if name == "BatchOptimizer":
                        invoke()
                    else:
                        invoke(query)
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1, (name, deprecations)

    def test_distinct_callsites_each_warn(self):
        query = _query()
        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("default")
            _call_optimize_cloud_query(query)   # callsite helper 1
            _call_optimize_with(query)          # callsite helper 2
            _call_batch_optimizer()             # callsite helper 3
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 3
        lines = {w.lineno for w in deprecations}
        assert len(lines) == 3  # three distinct reported callsites
