"""Shared test helpers: brute-force plan enumeration and frontiers."""

from __future__ import annotations

from itertools import product

from repro.core.enumeration import splits, subsets_in_size_order
from repro.plans import Plan, ScanPlan, combine
from repro.query import Query


def enumerate_all_plans(query: Query, cost_model) -> list[Plan]:
    """Enumerate every plan in the optimizer's search space.

    Uses the same subset/split/operator enumeration as RRPA (bushy plans,
    Cartesian products postponed) but keeps *all* plans instead of
    pruning — the ground truth for completeness tests.  Only usable for
    small queries (the count grows super-exponentially).
    """
    plans: dict[frozenset[str], list[Plan]] = {}
    for table in query.tables:
        key = frozenset((table,))
        plans[key] = [ScanPlan(table=table, operator=op)
                      for op in cost_model.scan_operators(table)]
    for subset in subsets_in_size_order(query):
        bucket: list[Plan] = []
        for left_set, right_set in splits(query, subset):
            lefts = plans.get(left_set, [])
            rights = plans.get(right_set, [])
            for left, right, op in product(lefts, rights,
                                           cost_model.join_operators()):
                bucket.append(combine(left, right, op))
        plans[subset] = bucket
    key = (query.table_set if query.num_tables > 1
           else frozenset((query.tables[0],)))
    return plans[key]


def plan_cost_at(cost_model, plan: Plan, x) -> dict[str, float]:
    """Exact (polynomial) cost vector of a plan at parameter ``x``."""
    return {m: poly.evaluate(x)
            for m, poly in cost_model.plan_cost_polynomials(plan).items()}


def pwl_plan_cost_at(cost_model, plan: Plan, x) -> dict[str, float]:
    """PWL-approximated cost vector of a plan at parameter ``x``."""
    return cost_model.plan_cost(plan).evaluate(x)


def dominates(cost_a: dict[str, float], cost_b: dict[str, float],
              tol: float = 1e-9) -> bool:
    """Vector dominance: a <= b on every metric (within tolerance)."""
    return all(cost_a[m] <= cost_b[m] + tol for m in cost_b)
