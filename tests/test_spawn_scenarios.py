"""Spawn-safe scenario shipping to pooled workers.

Pooled sessions used to resolve scenarios by name from the worker's
process-global default registry, which only works when workers *fork*
from an already-configured parent.  These tests run a worker pool under
the ``spawn`` start method — fresh interpreters with no inherited
registry state — and prove that scenarios travel inside the task
payloads (pickled factories), with by-name resolution kept as the
fallback for unpicklable registrations.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api import OptimizerSession
from repro.cost import CLOUD_METRICS
from repro.query import QueryGenerator
from repro.service.registry import ScenarioRegistry, default_registry


def _spawn_cost_model(query, resolution):
    """Module-level factory: picklable by reference for spawned workers."""
    from repro.cloud import CloudCostModel
    return CloudCostModel(query, resolution=resolution)


def _query():
    return QueryGenerator(seed=0).generate(2, "chain", 1)


def test_spawned_workers_use_shipped_scenario():
    """A scenario known only to the session's registry (not the default
    registry of the freshly spawned workers) optimizes via shipping."""
    registry = ScenarioRegistry()
    registry.register("spawn-only", _spawn_cost_model, CLOUD_METRICS)
    assert "spawn-only" not in default_registry()
    ctx = multiprocessing.get_context("spawn")
    with OptimizerSession("spawn-only", workers=2, registry=registry,
                          mp_context=ctx, warm_start=False) as session:
        item = session.optimize(_query())
    assert item.status == "ok", item.error
    assert item.scenario == "spawn-only"
    assert item.plan_set is not None


def test_builtin_scenarios_ship_under_spawn():
    ctx = multiprocessing.get_context("spawn")
    with OptimizerSession("cloud", workers=2, mp_context=ctx,
                          warm_start=False) as session:
        item = session.optimize(_query())
    assert item.status == "ok", item.error


def test_unpicklable_scenario_falls_back_by_name():
    """Lambda factories cannot ship; the worker-side by-name fallback is
    selected (and still works on fork platforms / the serial path)."""
    registry = ScenarioRegistry()
    registry.register(
        "lambda-scenario",
        lambda query, resolution: _spawn_cost_model(query, resolution),
        CLOUD_METRICS)
    with OptimizerSession("lambda-scenario", workers=0,
                          registry=registry) as session:
        # Serial path: the session registry's scenario is used directly.
        item = session.optimize(_query())
        assert item.status == "ok", item.error
        # The shipping decision memoizes the fallback.
        assert session._shipped_scenario("lambda-scenario") is None


def test_custom_registry_serial_path_needs_no_default_registration():
    registry = ScenarioRegistry()
    registry.register("serial-only", _spawn_cost_model, CLOUD_METRICS)
    assert "serial-only" not in default_registry()
    with OptimizerSession("serial-only", workers=0,
                          registry=registry) as session:
        item = session.optimize(_query())
    assert item.status == "ok", item.error


@pytest.mark.parametrize("workers", [2])
def test_spawned_pool_matches_serial_result(workers):
    """Shipped-scenario pooled results decode to the serial plan set."""
    query = _query()
    with OptimizerSession("cloud", workers=0, warm_start=False) as serial:
        expected = serial.optimize(query)
    ctx = multiprocessing.get_context("spawn")
    with OptimizerSession("cloud", workers=workers, mp_context=ctx,
                          warm_start=False) as pooled:
        got = pooled.optimize(query)
    assert got.status == "ok", got.error
    assert got.signature == expected.signature
    assert len(got.plan_set.entries) == len(expected.plan_set.entries)
    assert (got.plan_set.select([0.4], {"time": 1.0, "fees": 0.2})[1]
            == expected.plan_set.select([0.4], {"time": 1.0, "fees": 0.2})[1])
