"""Unit tests for the cost layer: polynomials, PWL functions, vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import (CLOUD_METRICS, CostMetric, MultiObjectivePWL,
                        ParamPolynomial, PiecewiseLinearFunction,
                        SharedPartition, accumulate_cost, accumulator_map,
                        metric_names, poly_sum, pwl_approximation_error,
                        pwl_sum)
from repro.errors import DimensionMismatchError, EmptyRegionError
from repro.geometry import ConvexPolytope


class TestParamPolynomial:
    def test_constant_and_variable(self):
        c = ParamPolynomial.constant(2, 5.0)
        x0 = ParamPolynomial.variable(2, 0)
        assert c.evaluate([0.3, 0.7]) == pytest.approx(5.0)
        assert x0.evaluate([0.3, 0.7]) == pytest.approx(0.3)

    def test_arithmetic(self):
        x0 = ParamPolynomial.variable(2, 0)
        x1 = ParamPolynomial.variable(2, 1)
        poly = (x0 * x1 * 3.0) + x0 - 2.0
        assert poly.evaluate([0.5, 0.4]) == pytest.approx(
            3 * 0.5 * 0.4 + 0.5 - 2.0)

    def test_degree_and_affine(self):
        x0 = ParamPolynomial.variable(1, 0)
        assert (x0 * x0).degree() == 2
        assert not (x0 * x0).is_affine()
        assert (x0 * 2 + 1).is_affine()
        w, b = (x0 * 2 + 1).affine_parts()
        assert w == pytest.approx([2.0])
        assert b == pytest.approx(1.0)

    def test_affine_parts_rejects_nonlinear(self):
        x0 = ParamPolynomial.variable(1, 0)
        with pytest.raises(ValueError):
            (x0 * x0).affine_parts()

    def test_multilinearity_of_cardinalities(self):
        x0 = ParamPolynomial.variable(2, 0)
        x1 = ParamPolynomial.variable(2, 1)
        card = x0 * x1 * 1000.0
        assert card.is_multilinear()
        assert not (x0 * x0).is_multilinear()

    def test_zero_coefficients_dropped(self):
        x0 = ParamPolynomial.variable(1, 0)
        zero = x0 - x0
        assert zero.monomials == {}
        assert zero.degree() == 0

    def test_mixed_params_rejected(self):
        with pytest.raises(ValueError):
            ParamPolynomial.variable(1, 0) + ParamPolynomial.variable(2, 0)

    def test_poly_sum(self):
        polys = [ParamPolynomial.constant(1, v) for v in (1.0, 2.0, 3.0)]
        assert poly_sum(polys, 1).evaluate([0.0]) == pytest.approx(6.0)

    def test_equality_and_hash(self):
        a = ParamPolynomial.variable(1, 0) * 2 + 1
        b = ParamPolynomial.variable(1, 0) * 2 + 1
        assert a == b
        assert hash(a) == hash(b)


class TestMetrics:
    def test_duplicate_names_rejected(self):
        m = CostMetric(name="time")
        with pytest.raises(ValueError):
            metric_names([m, m])

    def test_invalid_accumulator(self):
        with pytest.raises(ValueError):
            CostMetric(name="x", accumulator="median")

    def test_accumulator_map(self):
        assert accumulator_map(CLOUD_METRICS) == {"time": "sum",
                                                  "fees": "sum"}


class TestPWLFunction:
    def test_affine_evaluation(self):
        space = ConvexPolytope.unit_box(2)
        f = PiecewiseLinearFunction.affine(space, [1.0, 2.0], 0.5)
        assert f.evaluate([0.1, 0.2]) == pytest.approx(0.1 + 0.4 + 0.5)

    def test_outside_domain_raises(self):
        f = PiecewiseLinearFunction.constant(ConvexPolytope.unit_box(1), 1.0)
        with pytest.raises(EmptyRegionError):
            f.evaluate([2.0])

    def test_aligned_addition_no_lp(self, lp_stats, solver):
        part = SharedPartition([0.0], [1.0], 3)
        f = part.from_polynomial(ParamPolynomial.variable(1, 0))
        g = part.from_polynomial(ParamPolynomial.constant(1, 2.0))
        base = lp_stats.solved
        h = f.add(g)
        assert lp_stats.solved == base
        assert h.evaluate([0.5]) == pytest.approx(2.5)

    def test_unaligned_addition_requires_solver(self):
        a = PiecewiseLinearFunction.constant(ConvexPolytope.unit_box(1), 1.0)
        b = PiecewiseLinearFunction.affine(ConvexPolytope.unit_box(1),
                                           [1.0], 0.0)
        with pytest.raises(ValueError):
            a.add(b)

    def test_unaligned_addition(self, solver):
        a = PiecewiseLinearFunction.constant(ConvexPolytope.unit_box(1), 1.0)
        b = PiecewiseLinearFunction.affine(ConvexPolytope.unit_box(1),
                                           [2.0], 0.0)
        c = a.add(b, solver)
        assert c.evaluate([0.25]) == pytest.approx(1.5)

    def test_scale_and_add_constant(self):
        f = PiecewiseLinearFunction.affine(ConvexPolytope.unit_box(1),
                                           [2.0], 1.0)
        g = f.scale(0.5).add_constant(3.0)
        assert g.evaluate([1.0]) == pytest.approx(0.5 * 3.0 + 3.0)

    def test_negative_scale_rejected(self):
        f = PiecewiseLinearFunction.constant(ConvexPolytope.unit_box(1), 1.0)
        with pytest.raises(ValueError):
            f.scale(-1.0)

    def test_maximum(self, solver):
        space = ConvexPolytope.unit_box(1)
        f = PiecewiseLinearFunction.affine(space, [1.0], 0.0)   # x
        g = PiecewiseLinearFunction.affine(space, [-1.0], 1.0)  # 1 - x
        h = f.maximum(g, solver)
        for x in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert h.evaluate([x]) == pytest.approx(max(x, 1 - x))

    def test_minimum(self, solver):
        space = ConvexPolytope.unit_box(1)
        f = PiecewiseLinearFunction.affine(space, [1.0], 0.0)
        g = PiecewiseLinearFunction.affine(space, [-1.0], 1.0)
        h = f.minimum(g, solver)
        for x in (0.0, 0.3, 0.5, 0.9):
            assert h.evaluate([x]) == pytest.approx(min(x, 1 - x))

    def test_bounds_on(self, solver):
        space = ConvexPolytope.unit_box(1)
        f = PiecewiseLinearFunction.affine(space, [2.0], 1.0)
        lo, hi = f.bounds_on(ConvexPolytope.box([0.25], [0.75]), solver)
        assert lo == pytest.approx(1.5)
        assert hi == pytest.approx(2.5)

    def test_pwl_sum(self, solver):
        space = ConvexPolytope.unit_box(1)
        fs = [PiecewiseLinearFunction.constant(space, v)
              for v in (1.0, 2.0, 3.0)]
        total = pwl_sum(fs, solver)
        assert total.evaluate([0.5]) == pytest.approx(6.0)

    def test_needs_at_least_one_piece(self):
        with pytest.raises(ValueError):
            PiecewiseLinearFunction(1, [])


class TestSharedPartition:
    def test_region_count(self):
        part = SharedPartition([0.0, 0.0], [1.0, 1.0], 3)
        assert len(part.regions) == 3 * 3 * 2  # cells x 2 triangles

    def test_interpolation_exact_at_vertices(self):
        part = SharedPartition([0.0, 0.0], [1.0, 1.0], 2)
        poly = (ParamPolynomial.variable(2, 0)
                * ParamPolynomial.variable(2, 1) * 10.0)
        f = part.from_polynomial(poly)
        for simplex in part.simplices:
            for v in simplex.vertices:
                assert f.evaluate(v) == pytest.approx(poly.evaluate(v),
                                                      abs=1e-9)

    def test_affine_conversion_exact_everywhere(self):
        part = SharedPartition([0.0], [1.0], 4)
        poly = ParamPolynomial.variable(1, 0) * 3.0 + 2.0
        f = part.from_polynomial(poly)
        for x in np.linspace(0, 1, 17):
            assert f.evaluate([x]) == pytest.approx(poly.evaluate([x]))

    def test_error_shrinks_with_resolution(self):
        poly = (ParamPolynomial.variable(2, 0)
                * ParamPolynomial.variable(2, 1))
        coarse = pwl_approximation_error(
            poly, SharedPartition([0, 0], [1, 1], 1).from_polynomial(poly))
        fine = pwl_approximation_error(
            poly, SharedPartition([0, 0], [1, 1], 4).from_polynomial(poly))
        assert fine < coarse

    def test_cell_tags_and_hints_attached(self):
        part = SharedPartition([0.0], [1.0], 2)
        for idx, region in enumerate(part.regions):
            assert region.cell_tag == (part.token, idx)
            assert region.vertex_hint is not None

    def test_dimension_mismatch(self):
        part = SharedPartition([0.0], [1.0], 2)
        with pytest.raises(ValueError):
            part.from_polynomial(ParamPolynomial.variable(2, 0))


class TestMultiObjectivePWL:
    def make_pair(self, part):
        c1 = part.vector_from_polynomials({
            "time": ParamPolynomial.variable(1, 0) * 2.0,       # 2x
            "fees": ParamPolynomial.constant(1, 3.0)})
        c2 = part.vector_from_polynomials({
            "time": ParamPolynomial.variable(1, 0) + 0.5,        # x + 0.5
            "fees": ParamPolynomial.constant(1, 2.0)})
        return c1, c2

    def test_example2_pointwise(self):
        """Example 2 of the paper: p2 strictly dominates p1 for x > 0.5."""
        part = SharedPartition([0.0], [1.0], 2)
        p1, p2 = self.make_pair(part)
        assert p2.strictly_dominates_at(p1, [0.8])
        assert not p2.dominates_at(p1, [0.3])
        assert not p1.dominates_at(p2, [0.3])  # p1 loses on fees

    def test_example2_dominance_region(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        p1, p2 = self.make_pair(part)
        polys = p2.dominance_polytopes(p1, solver)
        assert polys
        xs = np.linspace(0, 1, 101)
        for x in xs:
            inside = any(p.contains_point([x]) for p in polys)
            assert inside == (x >= 0.5 - 1e-9)

    def test_self_dominance_everywhere(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        p1, __ = self.make_pair(part)
        polys = p1.dominance_polytopes(p1, solver)
        xs = np.linspace(0, 1, 21)
        for x in xs:
            assert any(p.contains_point([x]) for p in polys)

    def test_general_path_matches_pointwise(self, solver):
        space = ConvexPolytope.unit_box(1)
        a = MultiObjectivePWL.affine(space, {"m1": [1.0], "m2": [0.0]},
                                     {"m1": 0.0, "m2": 1.0})
        b = MultiObjectivePWL.affine(space, {"m1": [0.0], "m2": [1.0]},
                                     {"m1": 0.5, "m2": 0.0})
        polys = a.dominance_polytopes(b, solver)
        for x in np.linspace(0, 1, 51):
            inside = any(p.contains_point([x]) for p in polys)
            expected = a.dominates_at(b, [x])
            if abs(x - 0.5) < 0.02 or abs(x - 1.0) < 0.02:
                continue  # boundary tolerance
            assert inside == expected

    def test_add_aligned(self):
        part = SharedPartition([0.0], [1.0], 2)
        c1, c2 = self.make_pair(part)
        total = c1.add(c2)
        values = total.evaluate([0.5])
        assert values["time"] == pytest.approx(1.0 + 1.0)
        assert values["fees"] == pytest.approx(5.0)

    def test_add_with_max_accumulator(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        c1, c2 = self.make_pair(part)
        total = c1.add(c2, solver, accumulators={"time": "sum",
                                                 "fees": "max"})
        values = total.evaluate([0.25])
        assert values["fees"] == pytest.approx(3.0)  # max(3, 2)

    def test_metric_mismatch_rejected(self, solver):
        space = ConvexPolytope.unit_box(1)
        a = MultiObjectivePWL.constant(space, {"m1": 1.0})
        b = MultiObjectivePWL.constant(space, {"m2": 1.0})
        with pytest.raises(ValueError):
            a.add(b, solver)
        with pytest.raises(ValueError):
            a.dominance_polytopes(b, solver)

    def test_mixed_dims_rejected(self):
        f1 = PiecewiseLinearFunction.constant(ConvexPolytope.unit_box(1), 1.0)
        f2 = PiecewiseLinearFunction.constant(ConvexPolytope.unit_box(2), 1.0)
        with pytest.raises(DimensionMismatchError):
            MultiObjectivePWL({"a": f1, "b": f2})

    def test_accumulate_cost_helper(self, solver):
        part = SharedPartition([0.0], [1.0], 2)
        c1, c2 = self.make_pair(part)
        op = MultiObjectivePWL.constant(part.space,
                                        {"time": 0.1, "fees": 0.2})
        # Operator cost is not on the partition: general path exercised.
        total = accumulate_cost(op, [c1, c2], solver)
        values = total.evaluate([0.5])
        assert values["time"] == pytest.approx(0.1 + 1.0 + 1.0)
        assert values["fees"] == pytest.approx(0.2 + 3.0 + 2.0)
