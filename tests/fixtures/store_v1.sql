-- Plan-set store schema version 1, exactly as created before the
-- statistics split: ``plan_sets`` without the ``stats_digest`` column
-- and no ``features``/``signatures`` tables.  Checked in as the
-- migration fixture for tests/test_store.py — ensure_schema() must
-- upgrade a database built from this script to the current version
-- without losing the stored row.
PRAGMA user_version = 1;

CREATE TABLE plan_sets (
    id INTEGER PRIMARY KEY,
    signature TEXT NOT NULL UNIQUE,
    family TEXT NOT NULL,
    scenario TEXT NOT NULL,
    num_tables INTEGER NOT NULL,
    num_params INTEGER NOT NULL,
    alpha REAL NOT NULL,
    guarantee REAL NOT NULL,
    num_entries INTEGER NOT NULL,
    document TEXT NOT NULL
);

CREATE INDEX ix_plan_sets_family ON plan_sets (family, alpha);

CREATE TABLE param_boxes (
    plan_set_id INTEGER NOT NULL
        REFERENCES plan_sets(id) ON DELETE CASCADE,
    dim INTEGER NOT NULL,
    lo REAL NOT NULL,
    hi REAL NOT NULL,
    PRIMARY KEY (plan_set_id, dim)
);

INSERT INTO plan_sets VALUES
    (1, 'sig-legacy', 'fam-legacy', 'cloud', 2, 1, 0.0, 1.0, 0,
     '{"alpha":0.0,"entries":[],"guarantee":1.0,"num_params":1}');

INSERT INTO param_boxes VALUES (1, 0, 0.0, 1.0);
