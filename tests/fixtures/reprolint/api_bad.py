"""Planted REP5xx violations.

Expected findings: REP501 x3 (duplicate entry, phantom export,
unexported public def), REP502 x1.
"""

import warnings

__all__ = ["visible", "ghost", "visible", "old_api"]  # EXPECT REP501 x2


def visible():
    return 1


def orphan():  # EXPECT REP501: public def missing from __all__
    return 2


def old_api():
    warnings.warn("use visible()", DeprecationWarning)  # EXPECT REP502
    return visible()
