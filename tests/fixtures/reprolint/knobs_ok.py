"""Compliant knob access: no REP2xx findings expected."""

import os

from repro import config


def read_via_registry():
    return (config.enabled("REPRO_DEFERRED_LP"),
            config.value("REPRO_STORE_SEED_BREADTH"))


def read_non_knob_env():
    # Non-REPRO_ environment reads are out of scope for REP201.
    home = os.environ.get("HOME")
    os.environ.setdefault("PYTHONHASHSEED", "0")
    return home
