"""Suppression mechanics (linted as ``src/repro/core/...``).

Both REP102 findings below are suppressed in place; the directive on
``SEED`` matches nothing (REP001) and the ``enable=`` directive is not
a recognized form (REP002).

Expected findings: REP001 x1, REP002 x1 — and no REP102.
"""

import random  # reprolint: disable=REP102

SEED = 7  # reprolint: disable=REP101


def roll():
    return random.random()  # reprolint: disable=REP102


def bad_directive():
    return SEED  # reprolint: enable=REP102
