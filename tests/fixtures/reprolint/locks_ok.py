"""Compliant locking: no REP401 findings expected.

``hits`` is always written under the lock; ``generation`` is always
written bare (single-writer by design) — consistency either way is
fine, only the mix is a finding.  ``__init__`` writes are excluded
(construction precedes sharing).
"""

import threading


class Consistent:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.generation = 0

    def bump(self):
        with self._lock:
            self.hits += 1

    def reload(self):
        with self._lock:
            self.hits += 1

    def rotate(self):
        self.generation += 1
