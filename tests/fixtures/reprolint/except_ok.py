"""Compliant failure handling under REP601: every broad handler
re-raises, increments a counter, or carries a justified line-scoped
suppression — and typed / ``BaseException`` handlers are out of scope.
"""


class Counters:
    def __init__(self):
        self.absorbed = 0


COUNTERS = Counters()


def reraises(work):
    try:
        work()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def counted(work):
    try:
        work()
    except Exception:
        COUNTERS.absorbed += 1


def justified(work):
    try:
        work()
    # Teardown guard: the interpreter may already be finalizing, so
    # any failure here is unobservable by design.
    except Exception:  # reprolint: disable=REP601
        pass


def typed(work):
    try:
        work()
    except ValueError:
        pass


def teardown(work):
    try:
        work()
    except BaseException:
        pass
