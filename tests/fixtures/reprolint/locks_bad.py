"""Planted REP401 violation (path-independent rule).

``hits`` is written under ``self._lock`` in ``put()`` but bare in
``bump()`` — the torn-state mix REP401 exists to catch.

Expected findings: REP401 x1 (in ``bump``).
"""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self.hits = 0

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self.hits += 1

    def bump(self):
        self.hits += 1  # EXPECT REP401: locked in put(), bare here
