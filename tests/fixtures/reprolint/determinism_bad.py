"""Planted REP1xx violations (linted as ``src/repro/core/...``).

Expected findings: REP101 x1, REP102 x4, REP103 x1.
"""

import os
import random  # EXPECT REP102: entropy import
import time
import uuid  # EXPECT REP102: entropy import


def stamp():
    return time.time()  # EXPECT REP101: clock read, not allow-listed


def tokens():
    raw = os.urandom(8)  # EXPECT REP102: entropy call
    tag = uuid.uuid4()  # EXPECT REP102: entropy call
    return raw, tag, random


def shuffle_order(items):
    candidates = set(items)
    return [item for item in candidates]  # EXPECT REP103: set iteration
