"""Allow-list mechanics (linted as ``src/repro/core/run.py``).

``(src/repro/core/run.py, _BudgetWindow.__init__)`` is on
``WALLCLOCK_ALLOWLIST``; ``_BudgetWindow.other`` is not.

Expected findings: REP101 x1 (in ``other``).
"""

import time


class _BudgetWindow:
    def __init__(self):
        self.started = time.perf_counter()  # allow-listed site: OK

    def other(self):
        return time.perf_counter()  # EXPECT REP101: not allow-listed
