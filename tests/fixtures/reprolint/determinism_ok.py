"""Compliant bit-identity code: no REP1xx findings expected.

Every pattern here is a deliberate near-miss of a REP1xx rule.
"""


def ordered(items):
    pending = set(items)
    if any(item is None for item in pending):  # reducer-wrapped: OK
        return []
    count = len(pending)
    return [item for item in sorted(pending)], count  # sorted copy: OK


def over_dict(mapping):
    # dict iteration is insertion-ordered in CPython — out of REP103's
    # scope by design (see docs/static-analysis.md).
    return [key for key in mapping]


def seconds_label(value):
    # Mentioning "time" as data is not reading a clock.
    return f"time={value:.3f}"
