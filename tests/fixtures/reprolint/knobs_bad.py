"""Planted REP2xx violations (linted outside ``src/repro/config.py``).

Expected findings: REP201 x3, REP202 x1.
"""

import os

from repro import config


def read_direct():
    flag = os.environ.get("REPRO_SCALAR_KERNELS")  # EXPECT REP201
    raw = os.getenv("REPRO_DEFERRED_LP", "1")  # EXPECT REP201
    path = os.environ["REPRO_STORE_PERSIST_DB"]  # EXPECT REP201
    return flag, raw, path


def read_typo():
    return config.enabled("REPRO_TYPO_KNOB")  # EXPECT REP202: undeclared
