"""Planted REP402 violations (linted as ``src/repro/serve/...``).

Expected findings: REP402 x2.
"""

import threading
from threading import RLock


class LoopOwnedState:
    def __init__(self):
        self.lock = threading.Lock()  # EXPECT REP402
        self.rlock = RLock()  # EXPECT REP402 (alias resolves)
