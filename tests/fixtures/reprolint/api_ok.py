"""Compliant API surface: no REP5xx findings expected."""

import warnings

__all__ = ["fresh", "legacy"]


def fresh():
    return 1


def legacy():
    warnings.warn("use fresh()", DeprecationWarning, stacklevel=2)
    return fresh()


def _helper():
    return 0
