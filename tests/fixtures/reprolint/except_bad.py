"""Planted REP601 violations: swallowed exceptions.

Copied under ``src/repro/serve/`` (or ``src/repro/service/``) by the
tests — outside those prefixes every handler here is out of scope.
"""


def swallow_bare(work):
    try:
        work()
    except:  # noqa: E722
        pass


def swallow_exception(work):
    try:
        work()
    except Exception:
        return None


def swallow_aliased(work, log):
    try:
        work()
    except Exception as exc:
        # Logging is not accounting: no re-raise, no counter.
        log.append(str(exc))
