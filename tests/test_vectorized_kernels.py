"""Equivalence: batched/vectorized geometry kernels == scalar fallback.

The vectorized kernels of this library — batched emptiness LPs behind
region differences (:func:`repro.geometry.subtract_polytope_many`), the
NumPy general (unaligned) dominance path and the NumPy PWL ``add`` general
path — all promise *bit-identical* results to the scalar per-piece-pair
loops they replace.  ``REPRO_SCALAR_KERNELS=1`` selects the scalar loops;
these property-style tests run randomized inputs (random queries under
both built-in scenarios, random unaligned PWL functions, random polytope
differences) through both sides of the switch and compare exact float
representations.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import encode_result
from repro.core.serialize import _encode_polytope
from repro.cost import MultiObjectivePWL, PiecewiseLinearFunction
from repro.geometry import (ConvexPolytope, LinearConstraint,
                            subtract_polytope, subtract_polytope_many)
from repro.lp import LinearProgramSolver, LPStats
from repro.query import QueryGenerator
from repro.service.registry import get_scenario


def _polys_key(polys):
    """Exact (bitwise) representation of a polytope list."""
    return json.dumps([_encode_polytope(p) for p in polys], sort_keys=True)


def _pwl_key(function: PiecewiseLinearFunction) -> str:
    """Exact representation of a PWL function (weights, bases, regions)."""
    return json.dumps(
        [{"w": [float(v).hex() for v in p.w], "b": float(p.b).hex(),
          "region": _encode_polytope(p.region)} for p in function.pieces],
        sort_keys=True)


def _random_unaligned_pwl(rng, space: ConvexPolytope, pieces: int
                          ) -> PiecewiseLinearFunction:
    """A PWL function on a random (unaligned) interval partition of x0."""
    cuts = sorted(rng.uniform(0.1, 0.9, size=pieces - 1))
    bounds = [0.0] + list(cuts) + [1.0]
    regions = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        region = space.with_constraint(
            LinearConstraint.make([1.0] + [0.0] * (space.dim - 1), hi))
        regions.append(region.with_constraint(
            LinearConstraint.make([-1.0] + [0.0] * (space.dim - 1), -lo)))
    return PiecewiseLinearFunction.from_values_on_partition(
        regions, [rng.uniform(-1, 1, space.dim) for __ in regions],
        [float(b) for b in rng.uniform(0, 3, len(regions))])


def _solver() -> LinearProgramSolver:
    return LinearProgramSolver(stats=LPStats())


class TestFullRunEquivalence:
    """Whole optimizations under both scenarios, both kernel modes."""

    @pytest.mark.parametrize("scenario,seed,num_tables,shape", [
        ("cloud", 0, 4, "chain"),
        ("cloud", 1, 3, "star"),
        ("cloud", 2, 3, "cycle"),
        ("approx", 3, 4, "chain"),
        ("approx", 4, 3, "clique"),
    ])
    def test_plan_sets_bit_identical(self, monkeypatch, scenario, seed,
                                     num_tables, shape):
        query = QueryGenerator(seed=seed).generate(num_tables, shape, 1)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = get_scenario(scenario).optimize(query)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        batched = get_scenario(scenario).optimize(query)
        assert (json.dumps(encode_result(batched), sort_keys=True)
                == json.dumps(encode_result(scalar), sort_keys=True))
        # Pruning decisions match one for one, not just final plan sets.
        for counter in ("plans_created", "plans_inserted",
                        "plans_discarded_new", "plans_displaced_old"):
            assert (getattr(batched.stats, counter)
                    == getattr(scalar.stats, counter)), counter


class TestUnalignedKernelEquivalence:
    """The NumPy general dominance / add paths vs. the scalar loops."""

    @pytest.mark.parametrize("seed", range(6))
    def test_general_dominance_identical(self, monkeypatch, seed):
        rng = np.random.default_rng(seed)
        space = ConvexPolytope.unit_box(2)
        one = MultiObjectivePWL({
            "time": _random_unaligned_pwl(rng, space, 3),
            "fees": _random_unaligned_pwl(rng, space, 2)})
        two = MultiObjectivePWL({
            "time": _random_unaligned_pwl(rng, space, 2),
            "fees": _random_unaligned_pwl(rng, space, 3)})
        relax = float(rng.choice([0.0, 0.2]))
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = one.dominance_polytopes(two, _solver(), relax=relax)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        batched = one.dominance_polytopes(two, _solver(), relax=relax)
        assert _polys_key(batched) == _polys_key(scalar)

    @pytest.mark.parametrize("seed", range(6))
    def test_general_add_identical(self, monkeypatch, seed):
        rng = np.random.default_rng(100 + seed)
        space = ConvexPolytope.unit_box(2)
        one = _random_unaligned_pwl(rng, space, 3)
        two = _random_unaligned_pwl(rng, space, 3)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = one.add(two, _solver())
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        batched = one.add(two, _solver())
        assert _pwl_key(batched) == _pwl_key(scalar)


class TestBoundsAndExtremumEquivalence:
    """Batched bounds_on / maximum / minimum vs. the scalar loops."""

    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_on_identical(self, monkeypatch, seed):
        rng = np.random.default_rng(300 + seed)
        space = ConvexPolytope.unit_box(2)
        function = _random_unaligned_pwl(rng, space, 3)
        lo = rng.uniform(0.0, 0.4, 2)
        region = ConvexPolytope.box(lo, lo + rng.uniform(0.3, 0.5, 2))
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = function.bounds_on(region, _solver())
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        batched = function.bounds_on(region, _solver())
        assert (float(batched[0]).hex(), float(batched[1]).hex()) == (
            float(scalar[0]).hex(), float(scalar[1]).hex())

    def test_bounds_on_raises_off_domain(self, monkeypatch):
        rng = np.random.default_rng(42)
        space = ConvexPolytope.unit_box(2)
        function = _random_unaligned_pwl(rng, space, 2)
        outside = ConvexPolytope.box([2.0, 2.0], [3.0, 3.0])
        from repro.errors import EmptyRegionError
        for env in ("1", ""):
            monkeypatch.setenv("REPRO_SCALAR_KERNELS", env)
            with pytest.raises(EmptyRegionError):
                function.bounds_on(outside, _solver())

    def test_bounds_on_raises_when_unbounded(self, monkeypatch):
        """Non-empty overlaps whose min/max LPs are all unbounded must
        raise rather than return the unusable (inf, -inf) pair."""
        from repro.errors import EmptyRegionError
        universe = ConvexPolytope.universe(2)
        function = PiecewiseLinearFunction.affine(universe, [1.0, 0.0],
                                                  0.0)
        for env in ("1", ""):
            monkeypatch.setenv("REPRO_SCALAR_KERNELS", env)
            with pytest.raises(EmptyRegionError, match="bounded"):
                function.bounds_on(universe, _solver())

    @pytest.mark.parametrize("seed,take_max", [
        (0, True), (1, True), (2, False), (3, False)])
    def test_extremum_identical(self, monkeypatch, seed, take_max):
        """The crossing-split general path (unaligned operands) batches
        its emptiness LPs; piece lists must match bit for bit."""
        rng = np.random.default_rng(400 + seed)
        space = ConvexPolytope.unit_box(2)
        one = _random_unaligned_pwl(rng, space, 3)
        two = _random_unaligned_pwl(rng, space, 2)
        combine = (PiecewiseLinearFunction.maximum if take_max
                   else PiecewiseLinearFunction.minimum)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = combine(one, two, _solver())
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        batched = combine(one, two, _solver())
        assert _pwl_key(batched) == _pwl_key(scalar)
        # Spot-check values at sample points too.
        for x in ([0.15, 0.4], [0.55, 0.8], [0.9, 0.1]):
            assert batched.evaluate(x) == scalar.evaluate(x)


class TestBatchedDifferenceEquivalence:
    """subtract_polytope_many vs. per-base subtract_polytope."""

    @pytest.mark.parametrize("seed", range(4))
    def test_subtraction_identical(self, monkeypatch, seed):
        rng = np.random.default_rng(200 + seed)
        bases = []
        for __ in range(4):
            lo = rng.uniform(0.0, 0.4, 2)
            hi = lo + rng.uniform(0.3, 0.6, 2)
            bases.append(ConvexPolytope.box(lo, np.minimum(hi, 1.0)))
        cut_lo = rng.uniform(0.1, 0.5, 2)
        cut = ConvexPolytope.box(cut_lo, cut_lo + 0.35)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        batched = subtract_polytope_many(
            [ConvexPolytope.from_arrays(b._a, b._b) for b in bases],
            cut, _solver())
        scalar = [subtract_polytope(
            ConvexPolytope.from_arrays(b._a, b._b), cut, _solver())
            for b in bases]
        assert len(batched) == len(scalar)
        for got, expected in zip(batched, scalar):
            assert _polys_key(got) == _polys_key(expected)

    def test_empty_inputs(self):
        cut = ConvexPolytope.box([0.2, 0.2], [0.5, 0.5])
        assert subtract_polytope_many([], cut, _solver()) == []
        universe = ConvexPolytope.universe(2)
        # Subtracting the (unconstrained) universe leaves nothing.
        assert subtract_polytope_many(
            [ConvexPolytope.unit_box(2)], universe, _solver()) == [[]]


class TestSolveManyEquivalence:
    """solve_many == a loop of solve, including memo accounting."""

    def _problems(self):
        box = ConvexPolytope.unit_box(2)
        slanted = box.with_constraint(
            LinearConstraint.make([1.0, 1.0], 0.8))
        empty = box.with_constraint(
            LinearConstraint.make([1.0, 0.0], -0.5))
        return [
            (np.zeros(2), box._a, box._b, None),
            (np.array([1.0, 0.0]), slanted._a, slanted._b, None),
            (np.zeros(2), empty._a, empty._b, None),
            (np.zeros(2), box._a, box._b, None),  # in-batch duplicate
        ]

    def test_results_match_sequential(self):
        batch_solver = _solver()
        batched = batch_solver.solve_many(self._problems(),
                                          purpose="emptiness")
        seq_solver = _solver()
        sequential = [seq_solver.solve(c, a, b, bounds,
                                       purpose="emptiness")
                      for c, a, b, bounds in self._problems()]
        assert len(batched) == len(sequential)
        for got, expected in zip(batched, sequential):
            assert got.status == expected.status
            assert (got.objective is None) == (expected.objective is None)
            if got.objective is not None:
                assert got.objective == pytest.approx(expected.objective)
        assert batch_solver.stats.solved == seq_solver.stats.solved
        assert batch_solver.stats.seconds > 0

    def test_memo_dedupes_within_batch(self):
        stats = LPStats()
        solver = LinearProgramSolver(stats=stats, cache_size=64)
        results = solver.solve_many(self._problems(), purpose="emptiness")
        # The duplicate unit-box problem is answered from the memo.
        assert stats.solved == 3
        assert stats.cache_hits == 1
        assert results[0].status == results[3].status
