"""Tests for the extended operator set (sort-merge, block nested loop)."""

from __future__ import annotations

import pytest

from repro.cloud import CloudCostModel
from repro.core import PWLRRPA
from repro.plans import BLOCK_NESTED_LOOP_JOIN, SORT_MERGE_JOIN
from repro.query import QueryGenerator

from tests.helpers import dominates, enumerate_all_plans, pwl_plan_cost_at


@pytest.fixture(scope="module")
def query():
    return QueryGenerator(seed=41).generate(3, "chain", 1)


class TestExtendedOperators:
    def test_operator_set_toggles(self, query):
        plain = CloudCostModel(query, resolution=2)
        rich = CloudCostModel(query, resolution=2,
                              extended_operators=True)
        assert len(rich.join_operators()) == len(plain.join_operators()) + 2
        assert SORT_MERGE_JOIN in rich.join_operators()
        assert BLOCK_NESTED_LOOP_JOIN in rich.join_operators()

    def test_bnl_cost_quadratic(self, query):
        model = CloudCostModel(query, resolution=2,
                               extended_operators=True)
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        polys = model.join_cost_polynomials(left, right,
                                            BLOCK_NESTED_LOOP_JOIN)
        # When both inputs carry the same parameter the degree doubles;
        # here only one side is parameterized, so multilinearity holds.
        assert polys["time"].is_multilinear()

    def test_sort_merge_more_expensive_than_hash(self, query):
        from repro.plans import SINGLE_NODE_HASH_JOIN
        model = CloudCostModel(query, resolution=2,
                               extended_operators=True)
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        hj = model.join_cost_polynomials(left, right,
                                         SINGLE_NODE_HASH_JOIN)
        smj = model.join_cost_polynomials(left, right, SORT_MERGE_JOIN)
        # The log factor makes the sort-merge join dominated here (it
        # exists to enlarge the search space, not to win).
        assert smj["time"].evaluate([0.5]) > hj["time"].evaluate([0.5])

    def test_optimization_still_complete(self, query):
        """Theorem 3 holds over the enlarged operator set too."""
        model = CloudCostModel(query, resolution=2,
                               extended_operators=True)
        result = PWLRRPA().optimize_with_model(query, model)
        all_plans = enumerate_all_plans(query, model)
        assert len(all_plans) > len(
            enumerate_all_plans(query, CloudCostModel(query, resolution=2)))
        kept = [e.cost for e in result.entries]
        import numpy as np
        for plan in all_plans:
            for x in (np.array([v]) for v in (0.1, 0.5, 0.9)):
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(dominates(kc.evaluate(x), cost) for kc in kept)
