"""Regression tests: vectorized aligned dominance == scalar path, bitwise.

The batch path of :func:`repro.cost.batch_dominance_aligned` must mirror
:meth:`MultiObjectivePWL._dominance_aligned` decision by decision — the
acceptance bar is *bit-identical* Pareto plan sets, not approximately-equal
ones, so these tests compare exact float representations via the JSON
serialization layer.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PWLRRPAOptions, encode_result, optimize_cloud_query
from repro.core.serialize import _encode_polytope
from repro.cost import batch_dominance_aligned
from repro.lp import LinearProgramSolver, LPStats
from repro.query import QueryGenerator

#: Options reproducing the seed's scalar pruning path exactly.
SCALAR = PWLRRPAOptions(vectorized_pruning=False, lp_cache_size=0)


def _polys_key(polys):
    """Exact (bitwise) representation of a polytope list."""
    return json.dumps([_encode_polytope(p) for p in polys], sort_keys=True)


def _aligned_costs(seed: int, num_tables: int = 3, shape: str = "chain",
                   num_params: int = 1):
    """Randomized aligned cost functions: every DP entry of a real run."""
    query = QueryGenerator(seed=seed).generate(num_tables, shape, num_params)
    result = optimize_cloud_query(query, resolution=2)
    costs = [entry.cost for entries in result.dp_table.values()
             for entry in entries]
    assert len(costs) >= 4
    return costs


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pairwise_polytopes_identical(self, seed):
        costs = _aligned_costs(seed)
        one = costs[0]
        many = costs[1:8]
        for many_first in (True, False):
            batch = batch_dominance_aligned(
                many, one, LinearProgramSolver(stats=LPStats()),
                many_first=many_first)
            assert batch is not None
            assert len(batch) == len(many)
            solver = LinearProgramSolver(stats=LPStats())
            for cost, polys in zip(many, batch):
                if many_first:
                    scalar = cost.dominance_polytopes(one, solver)
                else:
                    scalar = one.dominance_polytopes(cost, solver)
                assert _polys_key(polys) == _polys_key(scalar)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_relaxed_dominance_identical(self, seed):
        costs = _aligned_costs(seed)
        one = costs[0]
        many = costs[1:6]
        batch = batch_dominance_aligned(
            many, one, LinearProgramSolver(stats=LPStats()), relax=0.15)
        assert batch is not None
        solver = LinearProgramSolver(stats=LPStats())
        for cost, polys in zip(many, batch):
            scalar = cost.dominance_polytopes(one, solver, relax=0.15)
            assert _polys_key(polys) == _polys_key(scalar)

    def test_empty_batch(self):
        costs = _aligned_costs(0)
        solver = LinearProgramSolver(stats=LPStats())
        assert batch_dominance_aligned([], costs[0], solver) == []

    def test_unaligned_falls_back(self):
        chain = _aligned_costs(0)[0]
        other = _aligned_costs(0, num_tables=2)[0]
        solver = LinearProgramSolver(stats=LPStats())
        assert batch_dominance_aligned([other], chain, solver) is None


class TestFullRunsBitIdentical:
    @pytest.mark.parametrize("seed,shape,num_tables,num_params", [
        (0, "chain", 4, 1),
        (1, "star", 4, 1),
        (2, "chain", 3, 2),
        (3, "star", 3, 2),
    ])
    def test_vectorized_run_equals_seed_scalar_run(self, seed, shape,
                                                   num_tables, num_params):
        query = QueryGenerator(seed=seed).generate(num_tables, shape,
                                                   num_params)
        resolution = 1 if num_params == 2 else 2
        fast = optimize_cloud_query(query, resolution=resolution,
                                    options=PWLRRPAOptions())
        slow = optimize_cloud_query(query, resolution=resolution,
                                    options=SCALAR)
        assert (json.dumps(encode_result(fast), sort_keys=True)
                == json.dumps(encode_result(slow), sort_keys=True))
        # Pruning decisions match one for one, not just final plan sets.
        assert fast.stats.plans_created == slow.stats.plans_created
        assert fast.stats.plans_discarded_new == slow.stats.plans_discarded_new
        assert fast.stats.plans_displaced_old == slow.stats.plans_displaced_old
