"""Chaos tests: injected faults and the self-healing serving tier.

Every test drives a real gateway (or session) under a deterministic
``repro.faults`` schedule and asserts the recovery contract from
``docs/robustness.md``: no dropped connections, clean typed errors,
honest degraded responses, and — the core invariant — results after
recovery bit-identical to a fault-free run.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import faults
from repro.api import OptimizerSession
from repro.core import encode_plan_set
from repro.query import QueryGenerator
from repro.serve import (GatewayClient, GatewayConfig, StreamInterrupted,
                         launch)

GENEROUS = dict(tenant_rate=1000.0, tenant_burst=1000.0)


def make_query(seed: int = 0, num_tables: int = 3):
    return QueryGenerator(seed=seed).generate(num_tables, "chain", 1)


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    """Chaos schedules are installed per test, never inherited."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


# ----------------------------------------------------------------------
# Shard death: respawn, retry, bit-identity
# ----------------------------------------------------------------------

class TestShardDeath:
    def test_retried_request_is_bit_identical_after_recovery(self, tmp_path):
        query = make_query(seed=31, num_tables=4)
        with launch(GatewayConfig(shards=1,
                                  store_path=str(tmp_path / "plans.db"),
                                  **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            baseline = client.optimize(query)
            assert baseline.status_code == 200

            faults.install("serve.shard.die:1")
            healed = client.optimize(query)
            assert healed.status_code == 200
            assert healed.doc["status"] in ("ok", "cached")
            assert healed.doc["plan_set"] == baseline.doc["plan_set"]

            metrics = client.metrics()
            assert metrics["resilience"]["shard_respawns"] == 1
            assert metrics["faults"]["injected"] == 1
            assert metrics["faults"]["sites"] == {"serve.shard.die": 1}

    def test_shard_death_without_store_still_answers_cleanly(self):
        # No persistent tier to degrade to: a shard that dies on both
        # attempts must still produce a well-formed 500, never a
        # dropped connection.
        with launch(GatewayConfig(shards=1, **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            faults.install("serve.shard.die:1-2")
            response = client.optimize(make_query(seed=32))
            assert response.status_code == 500
            assert "InjectedFault" in response.doc["error"]
            assert client.metrics()["resilience"]["shard_respawns"] == 2

    def test_client_retry_turns_shard_death_into_success(self, tmp_path):
        # The client-side leg of the invariant: with retries enabled a
        # caller never sees the 500 at all.
        query = make_query(seed=33)
        with launch(GatewayConfig(shards=1,
                                  store_path=str(tmp_path / "plans.db"),
                                  **GENEROUS)) as handle:
            patient = GatewayClient(handle.host, handle.port,
                                    timeout=120.0, retries=2,
                                    backoff_base=0.01)
            baseline = patient.optimize(query)
            assert baseline.status_code == 200
            # Both attempts of the first request die (degraded answer
            # serves it); the retried request runs fault-free.
            faults.install("serve.shard.die:1-2")
            response = patient.optimize(query)
            assert response.status_code == 200
            assert response.doc["plan_set"] == baseline.doc["plan_set"]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_breaker_opens_sheds_then_probes_shut(self, tmp_path):
        query = make_query(seed=34, num_tables=4)
        with launch(GatewayConfig(shards=1,
                                  store_path=str(tmp_path / "plans.db"),
                                  **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            warm = client.optimize(query)
            assert warm.status_code == 200

            # Hits 1-6 cover exactly requests 1-3 (two attempts each,
            # both dying).  Request 3 trips the breaker (threshold 3);
            # requests 4-5 are shed to the degraded path without
            # touching the shard; request 6 is the half-open probe and
            # succeeds (hit 7 is outside the window), closing the
            # breaker.
            faults.install("serve.shard.die:1-6")
            responses = [client.optimize(query) for _ in range(6)]
            assert [r.status_code for r in responses] == [200] * 6
            statuses = [r.doc["status"] for r in responses]
            assert statuses[:5] == ["degraded"] * 5
            assert statuses[5] in ("ok", "cached")
            assert all(r.doc["plans"] > 0 for r in responses)

            resilience = client.metrics()["resilience"]
            assert resilience["shard_respawns"] == 6
            assert resilience["breaker_opens"] == 1
            assert resilience["degraded_responses"] == 5

    def test_degraded_response_carries_honest_guarantee(self, tmp_path):
        query = make_query(seed=35)
        with launch(GatewayConfig(shards=1,
                                  store_path=str(tmp_path / "plans.db"),
                                  **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            warm = client.optimize(query)
            faults.install("serve.shard.die:1-2")
            degraded = client.optimize(query)
            assert degraded.status_code == 200
            assert degraded.doc["status"] == "degraded"
            assert "degraded_reason" in degraded.doc
            assert degraded.doc["guarantee"] >= 1.0
            assert degraded.doc["signature"] == warm.doc["signature"]


# ----------------------------------------------------------------------
# Streaming interruption
# ----------------------------------------------------------------------

class TestStreamInterruption:
    def test_mid_stream_cut_raises_typed_error_with_last_event(self):
        query = make_query(seed=36, num_tables=4)
        with launch(GatewayConfig(shards=1, **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            faults.install("serve.stream.disconnect:1")
            with pytest.raises(StreamInterrupted) as excinfo:
                for _ in client.stream_optimize(query):
                    pass
            assert excinfo.value.events_seen == 1
            assert excinfo.value.last_event is not None
            assert excinfo.value.last_event["kind"]

            # The schedule window has passed: a straight retry streams
            # to completion.
            events = list(client.stream_optimize(query))
            assert events[-1]["kind"] == "done"
            assert events[-1]["status"] in ("ok", "partial")


# ----------------------------------------------------------------------
# Store write faults
# ----------------------------------------------------------------------

class TestStoreWriteFaults:
    def test_write_faults_absorbed_while_serving_continues(self, tmp_path):
        with launch(GatewayConfig(shards=1,
                                  store_path=str(tmp_path / "plans.db"),
                                  **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            faults.install("store.put.fail:*")
            first = client.optimize(make_query(seed=37))
            second = client.optimize(make_query(seed=37))
            assert first.status_code == 200
            assert second.status_code == 200
            assert second.doc["plan_set"] == first.doc["plan_set"]

            metrics = client.metrics()
            assert metrics["store"]["write_faults_absorbed"] >= 1
            assert metrics["faults"]["sites"]["store.put.fail"] >= 1


# ----------------------------------------------------------------------
# Stop/drain race
# ----------------------------------------------------------------------

class TestStopRace:
    def test_request_in_flight_at_stop_gets_clean_503(self):
        # A shard wedged for far longer than the stop shed window: the
        # in-flight request must get a clean 503 (never a hang, never a
        # dropped connection) and stop must return promptly anyway.
        with launch(GatewayConfig(shards=1, **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            faults.install("serve.shard.slow:1:30.0")
            results: dict = {}

            def run() -> None:
                results["response"] = client.optimize(make_query(seed=38))

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.5)  # let the request reach the wedged shard
            started = time.monotonic()
            handle.close()
            elapsed = time.monotonic() - started
            thread.join(30.0)
            assert not thread.is_alive()
            assert elapsed < 15.0
            response = results["response"]
            assert response.status_code == 503
            assert response.doc == {"error": "stopping"}


# ----------------------------------------------------------------------
# Worker-pool crashes (session level)
# ----------------------------------------------------------------------

class TestWorkerCrash:
    def test_pool_respawn_then_identical_result(self, monkeypatch):
        # The crash schedule reaches pool workers through the
        # environment (children parse REPRO_FAULTS themselves).  Clear
        # it before the retry or every respawned worker dies the same
        # deterministic death — which is exactly the point.
        query = make_query(seed=39)
        monkeypatch.setenv("REPRO_FAULTS", "service.worker.crash:1")
        faults.reset()
        with OptimizerSession("cloud", workers=2) as session:
            crashed = session.map([query])[0]
            assert crashed.status == "error"
            monkeypatch.delenv("REPRO_FAULTS")
            faults.reset()
            healed = session.map([query])[0]
            assert healed.ok
            assert session.pool_respawns >= 1
        with OptimizerSession("cloud") as reference:
            expected = reference.map([query])[0]
        assert json.dumps(encode_plan_set(healed.plan_set)) == \
            json.dumps(encode_plan_set(expected.plan_set))

    def test_poisoned_worker_result_is_retried_by_gateway(self, tmp_path):
        # A worker that returns garbage (flag-kind failpoint) yields an
        # error item; the gateway retries once on the same shard and
        # the second, unpoisoned attempt serves normally.
        query = make_query(seed=40)
        with launch(GatewayConfig(shards=1,
                                  store_path=str(tmp_path / "plans.db"),
                                  **GENEROUS)) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=120.0)
            faults.install("service.worker.poison:1")
            response = client.optimize(query)
            assert response.status_code == 200
            assert response.doc["status"] in ("ok", "cached")
            resilience = client.metrics()["resilience"]
            assert resilience["shard_respawns"] == 0
