"""Unit tests for the catalog and query model."""

from __future__ import annotations

import pytest

from repro.catalog import (Catalog, Column, Index, Table,
                           base_cardinality_polynomial, join_selectivity)
from repro.errors import CatalogError, QueryError
from repro.query import (JoinGraph, JoinPredicate, ParametricPredicate,
                         Query, QueryGenerator)


def small_catalog() -> Catalog:
    t0 = Table("t0", 1000, (Column("a", 100), Column("p", 50)))
    t1 = Table("t1", 5000, (Column("a", 200),))
    t2 = Table("t2", 200, (Column("b", 20),))
    return Catalog.from_tables(
        [t0, t1, t2], [Index(table_name="t0", column_name="p")])


def small_query() -> Query:
    catalog = small_catalog()
    joins = (JoinPredicate("t0", "a", "t1", "a", selectivity=1 / 200),
             JoinPredicate("t1", "a", "t2", "b", selectivity=1 / 200))
    params = (ParametricPredicate(table="t0", column="p",
                                  parameter_index=0),)
    return Query(catalog=catalog, tables=("t0", "t1", "t2"),
                 join_predicates=joins, parametric_predicates=params)


class TestCatalog:
    def test_lookup(self):
        cat = small_catalog()
        assert cat.table("t0").cardinality == 1000
        assert cat.table("t0").column("a").distinct_values == 100

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            small_catalog().table("nope")

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            small_catalog().table("t0").column("nope")

    def test_duplicate_table_rejected(self):
        cat = small_catalog()
        with pytest.raises(CatalogError):
            cat.add_table(Table("t0", 10))

    def test_index_validation(self):
        cat = small_catalog()
        with pytest.raises(CatalogError):
            cat.add_index(Index(table_name="t0", column_name="zz"))
        assert cat.has_index("t0", "p")
        assert not cat.has_index("t1", "a")

    def test_column_validation(self):
        with pytest.raises(ValueError):
            Column("c", 0)
        with pytest.raises(ValueError):
            Table("t", 0)
        with pytest.raises(CatalogError):
            Table("t", 5, (Column("c", 1), Column("c", 2)))

    def test_join_selectivity(self):
        cat = small_catalog()
        sel = join_selectivity(cat, "t0", "a", "t1", "a")
        assert sel == pytest.approx(1 / 200)

    def test_base_cardinality_polynomial(self):
        cat = small_catalog()
        const = base_cardinality_polynomial(cat, "t1", None, 1)
        assert const.evaluate([0.7]) == pytest.approx(5000)
        param = base_cardinality_polynomial(cat, "t0", 0, 1)
        assert param.evaluate([0.25]) == pytest.approx(250)


class TestQuery:
    def test_cardinality_polynomial(self):
        q = small_query()
        # Full join: 1000*x * 5000 * 200 * (1/200) * (1/200)
        card = q.cardinality(frozenset(("t0", "t1", "t2")))
        assert card.evaluate([1.0]) == pytest.approx(
            1000 * 5000 * 200 / 200 / 200)
        assert card.evaluate([0.5]) == pytest.approx(
            0.5 * 1000 * 5000 * 200 / 200 / 200)

    def test_cardinality_subset_excludes_cross_predicates(self):
        q = small_query()
        card = q.cardinality(frozenset(("t0", "t2")))  # no joining pred
        assert card.evaluate([1.0]) == pytest.approx(1000 * 200)

    def test_cardinality_cache(self):
        q = small_query()
        a = q.cardinality(frozenset(("t0", "t1")))
        b = q.cardinality(frozenset(("t0", "t1")))
        assert a is b

    def test_invalid_subset(self):
        q = small_query()
        with pytest.raises(QueryError):
            q.cardinality(frozenset(("zz",)))
        with pytest.raises(QueryError):
            q.cardinality(frozenset())

    def test_parameter_lookup(self):
        q = small_query()
        assert q.parameter_of("t0") == 0
        assert q.parameter_of("t1") is None
        assert q.parametric_predicate_of("t0").column == "p"

    def test_validation_errors(self):
        cat = small_catalog()
        with pytest.raises(QueryError):
            Query(catalog=cat, tables=("t0", "t0"))
        with pytest.raises(QueryError):
            Query(catalog=cat, tables=("t0",),
                  join_predicates=(JoinPredicate("t0", "a", "t1", "a",
                                                 0.5),))
        with pytest.raises(QueryError):
            Query(catalog=cat, tables=("t0", "t1"),
                  parametric_predicates=(
                      ParametricPredicate("t0", "p", 0),
                      ParametricPredicate("t1", "a", 0)))
        with pytest.raises(QueryError):
            Query(catalog=cat, tables=("t0",),
                  parametric_predicates=(
                      ParametricPredicate("t0", "p", 3),))

    def test_predicate_validation(self):
        with pytest.raises(ValueError):
            JoinPredicate("a", "x", "a", "x", 0.5)  # self join
        with pytest.raises(ValueError):
            JoinPredicate("a", "x", "b", "y", 0.0)  # zero selectivity
        with pytest.raises(ValueError):
            ParametricPredicate("a", "x", -1)


class TestJoinGraph:
    def test_chain_connectivity(self):
        q = small_query()
        g = q.join_graph
        assert g.is_connected()
        assert g.is_connected(frozenset(("t0", "t1")))
        assert not g.is_connected(frozenset(("t0", "t2")))

    def test_split_connectivity(self):
        g = small_query().join_graph
        assert g.split_is_connected(frozenset(("t0",)),
                                    frozenset(("t1", "t2")))
        assert not g.split_is_connected(frozenset(("t0",)),
                                        frozenset(("t2",)))

    def test_connected_subsets_chain(self):
        g = small_query().join_graph
        subsets = g.connected_subsets()
        # Chain t0-t1-t2: singletons (3) + {t0,t1},{t1,t2} + full set.
        assert len(subsets) == 6

    def test_degree_histogram_star(self):
        gen = QueryGenerator(seed=2)
        q = gen.generate(num_tables=5, shape="star", num_params=1)
        hist = q.join_graph.degree_histogram()
        assert hist[4] == 1  # the hub
        assert hist[1] == 4  # the spokes

    def test_predicate_outside_graph_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(("a", "b"),
                      [JoinPredicate("a", "x", "c", "y", 0.5)])


class TestQueryGenerator:
    def test_deterministic(self):
        q1 = QueryGenerator(seed=42).generate(4, "chain", 1)
        q2 = QueryGenerator(seed=42).generate(4, "chain", 1)
        assert [q1.catalog.table(t).cardinality for t in q1.tables] == \
            [q2.catalog.table(t).cardinality for t in q2.tables]
        assert q1.join_predicates == q2.join_predicates

    @pytest.mark.parametrize("shape,expected_edges", [
        ("chain", 4), ("star", 4), ("cycle", 5), ("clique", 10)])
    def test_shapes(self, shape, expected_edges):
        q = QueryGenerator(seed=1).generate(5, shape, 1)
        assert len(q.join_predicates) == expected_edges
        assert q.join_graph.is_connected()

    def test_ten_percent_rule(self):
        q = QueryGenerator(seed=3).generate(6, "chain", 2)
        for table_name in q.tables:
            table = q.catalog.table(table_name)
            for col in table.columns:
                cap = max(1, -(-table.cardinality // 10))  # ceil
                assert col.distinct_values <= cap

    def test_param_tables_have_indexes(self):
        q = QueryGenerator(seed=4).generate(5, "star", 2)
        assert q.num_params == 2
        for pred in q.parametric_predicates:
            assert q.catalog.has_index(pred.table, pred.column)

    def test_invalid_args(self):
        gen = QueryGenerator()
        with pytest.raises(ValueError):
            gen.generate(0)
        with pytest.raises(ValueError):
            gen.generate(2, num_params=3)
        with pytest.raises(ValueError):
            gen.generate(3, shape="ring")

    def test_single_table_query(self):
        q = QueryGenerator(seed=5).generate(1, "chain", 1)
        assert q.num_tables == 1
        assert q.join_predicates == ()

    def test_batch(self):
        batch = QueryGenerator(seed=6).generate_batch(3, 4, "chain", 1)
        assert len(batch) == 3
        cards = [tuple(q.catalog.table(t).cardinality for t in q.tables)
                 for q in batch]
        assert len(set(cards)) > 1  # independent random draws
