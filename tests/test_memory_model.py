"""Tests for the buffer-parameter extension (genuinely PWL costs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import ClusterSpec, MemoryCloudCostModel
from repro.core import PWLRRPA
from repro.plans import SINGLE_NODE_HASH_JOIN, ScanPlan, combine
from repro.query import QueryGenerator


@pytest.fixture(scope="module")
def query():
    return QueryGenerator(seed=31).generate(2, "chain", 1)


@pytest.fixture(scope="module")
def model(query):
    # Tiny per-node memory (the seed-31 tables have ~100-200 rows) so the
    # spill kink lies strictly inside the unit memory box.
    cluster = ClusterSpec(memory_tuples_per_node=50)
    return MemoryCloudCostModel(query, resolution=2, cluster=cluster)


def single_join(query, model):
    scans = [ScanPlan(table=t, operator=model.scan_operators(t)[0])
             for t in query.tables]
    return combine(scans[0], scans[1], SINGLE_NODE_HASH_JOIN)


class TestSpillBehaviour:
    def test_time_nonincreasing_in_memory(self, query, model):
        """More memory can only help (weakly) at fixed selectivity."""
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        times = [model._join_values(left, right, SINGLE_NODE_HASH_JOIN,
                                    [0.8, m])["time"]
                 for m in np.linspace(0, 1, 11)]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_spill_kink_exists(self, query, model):
        """Below the kink the cost has a memory gradient, above it none."""
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        build = model._cardinality(left, [0.8, 0.0])
        capacity = model.cluster.memory_tuples_per_node
        if build <= capacity:
            pytest.skip("build side fits in minimum memory for this seed")
        low = model._join_values(left, right, SINGLE_NODE_HASH_JOIN,
                                 [0.8, 0.0])["time"]
        mid = model._join_values(left, right, SINGLE_NODE_HASH_JOIN,
                                 [0.8, 0.5])["time"]
        assert low > mid  # spilling hurts

    def test_scan_costs_memory_independent(self, query, model):
        t = query.tables[0]
        plan = ScanPlan(table=t, operator=model.scan_operators(t)[0])
        a = model._scan_values(plan, [0.5, 0.0])
        b = model._scan_values(plan, [0.5, 1.0])
        assert a == b

    def test_pwl_matches_exact_at_grid_vertices(self, query, model):
        plan = single_join(query, model)
        left = frozenset((query.tables[0],))
        right = frozenset((query.tables[1],))
        pwl = model.join_local_cost(left, right, SINGLE_NODE_HASH_JOIN)
        for xs in ([0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [0.5, 1.0]):
            exact = model._join_values(left, right, SINGLE_NODE_HASH_JOIN,
                                       xs)
            approx = pwl.evaluate(xs)
            assert approx["time"] == pytest.approx(exact["time"], rel=1e-9)


class TestOptimizationWithMemoryParameter:
    @pytest.fixture(scope="class")
    def result(self, query, model):
        return PWLRRPA().optimize_with_model(query, model)

    def test_produces_plan_set(self, result):
        assert result.entries
        assert result.stats.lps_solved > 0

    def test_every_joint_point_covered(self, result):
        for sel in (0.1, 0.9):
            for mem in (0.1, 0.9):
                assert result.plans_for([sel, mem])

    def test_frontier_varies_with_memory(self, query, model, result):
        """Exact plan costs must differ across the memory axis (the spill
        penalty is real), and the kept set must track the better plan."""
        plan = single_join(query, model)
        lo = model.plan_cost_values(plan, [0.9, 0.02])["time"]
        hi = model.plan_cost_values(plan, [0.9, 0.98])["time"]
        if lo == pytest.approx(hi):
            pytest.skip("no spill for this seed")
        assert lo > hi

    def test_completeness_against_bruteforce(self, query, model, result):
        from tests.helpers import enumerate_all_plans
        all_plans = enumerate_all_plans(query, model)
        # Cost of arbitrary plans in the optimizer's (PWL) view:
        def pwl_cost(plan, x):
            if isinstance(plan, ScanPlan):
                return model.scan_cost(plan).evaluate(x)
            left = pwl_cost(plan.left, x)
            right = pwl_cost(plan.right, x)
            local = model.join_local_cost(
                plan.left.tables, plan.right.tables,
                plan.operator).evaluate(x)
            return {m: left[m] + right[m] + local[m] for m in local}
        for plan in all_plans:
            for x in ([0.2, 0.3], [0.8, 0.1], [0.6, 0.9]):
                cost = pwl_cost(plan, x)
                assert any(
                    all(e.cost.evaluate(x)[m] <= cost[m] + 1e-9
                        for m in cost)
                    for e in result.entries)
