"""Unit tests for convex polytopes and linear constraints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, EmptyRegionError
from repro.geometry import ConvexPolytope, LinearConstraint


class TestLinearConstraint:
    def test_normalization(self):
        c = LinearConstraint.make([2.0, 0.0], 4.0)
        assert c.a == pytest.approx([1.0, 0.0])
        assert c.b == pytest.approx(2.0)

    def test_contains_and_slack(self):
        c = LinearConstraint.make([1.0], 1.0)
        assert c.contains([0.5])
        assert not c.contains([1.5])
        assert c.slack([0.25]) == pytest.approx(0.75)

    def test_negation_shares_boundary(self):
        c = LinearConstraint.make([1.0, 1.0], 1.0)
        n = c.negation()
        boundary = np.array([0.5, 0.5])
        assert c.contains(boundary)
        assert n.contains(boundary)
        assert not n.contains([0.0, 0.0])

    def test_same_halfspace(self):
        c1 = LinearConstraint.make([2.0, 0.0], 2.0)
        c2 = LinearConstraint.make([4.0, 0.0], 4.0)
        c3 = LinearConstraint.make([1.0, 0.0], 0.9)
        assert c1.same_halfspace(c2)
        assert not c1.same_halfspace(c3)

    def test_trivial_detection(self):
        assert LinearConstraint.make([0.0], 1.0).is_trivial()
        assert LinearConstraint.make([0.0], -1.0).is_infeasible_trivial()

    def test_dimension_mismatch(self):
        c = LinearConstraint.make([1.0, 0.0], 1.0)
        with pytest.raises(DimensionMismatchError):
            c.contains([1.0])


class TestPolytopeBasics:
    def test_unit_box_contains(self, solver):
        box = ConvexPolytope.unit_box(2)
        assert box.contains_point([0.5, 0.5])
        assert box.contains_point([0.0, 1.0])
        assert not box.contains_point([1.2, 0.5])
        assert not box.is_empty(solver)

    def test_box_invalid_bounds(self):
        with pytest.raises(ValueError):
            ConvexPolytope.box([1.0], [0.0])
        with pytest.raises(ValueError):
            ConvexPolytope.box([0.0, 0.0], [1.0])

    def test_empty_polytope(self, solver):
        p = ConvexPolytope.from_arrays([[1.0], [-1.0]], [0.0, -1.0])
        assert p.is_empty(solver)

    def test_emptiness_cached(self, lp_stats, solver):
        p = ConvexPolytope.unit_box(1)
        p.is_empty(solver)
        first = lp_stats.solved
        p.is_empty(solver)
        assert lp_stats.solved == first

    def test_universe(self, solver):
        u = ConvexPolytope.universe(3)
        assert not u.is_empty(solver)
        assert u.contains_point([100.0, -5.0, 3.0])

    def test_duplicate_constraints_deduped(self):
        c = LinearConstraint.make([1.0], 1.0)
        p = ConvexPolytope(1, [c, c, c])
        assert p.num_constraints == 1

    def test_dimension_mismatch(self):
        c = LinearConstraint.make([1.0, 0.0], 1.0)
        with pytest.raises(DimensionMismatchError):
            ConvexPolytope(1, [c])


class TestChebyshev:
    def test_unit_square_center(self, solver):
        center, radius = ConvexPolytope.unit_box(2).chebyshev(solver)
        assert center == pytest.approx([0.5, 0.5])
        assert radius == pytest.approx(0.5)

    def test_degenerate_segment_has_no_interior(self, solver):
        # x0 in [0,1], x1 == 0.3: a line segment in 2-D.
        p = ConvexPolytope.box([0.0, 0.3], [1.0, 0.3])
        assert not p.has_interior(solver)

    def test_empty_has_negative_radius(self, solver):
        p = ConvexPolytope.box([0.0], [1.0]).intersect(
            ConvexPolytope.box([2.0], [3.0]))
        __, radius = p.chebyshev(solver)
        assert radius < 0 or p.is_empty(solver)

    def test_unbounded_radius(self, solver):
        p = ConvexPolytope.from_arrays([[-1.0, 0.0]], [0.0])  # x0 >= 0
        __, radius = p.chebyshev(solver)
        assert radius == np.inf

    def test_interior_point_inside(self, solver):
        p = ConvexPolytope.box([0.2, 0.4], [0.6, 0.9])
        x = p.interior_point(solver)
        assert p.contains_point(x)

    def test_interior_point_of_empty_raises(self, solver):
        p = ConvexPolytope.from_arrays([[1.0], [-1.0]], [-1.0, -1.0])
        with pytest.raises(EmptyRegionError):
            p.interior_point(solver)


class TestSetOperations:
    def test_intersection(self, solver):
        a = ConvexPolytope.box([0.0, 0.0], [1.0, 1.0])
        b = ConvexPolytope.box([0.5, 0.5], [2.0, 2.0])
        inter = a.intersect(b)
        assert inter.contains_point([0.7, 0.7])
        assert not inter.contains_point([0.2, 0.2])
        assert not inter.is_empty(solver)

    def test_intersection_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            ConvexPolytope.unit_box(1).intersect(ConvexPolytope.unit_box(2))

    def test_containment(self, solver):
        outer = ConvexPolytope.unit_box(2)
        inner = ConvexPolytope.box([0.2, 0.2], [0.8, 0.8])
        assert outer.contains_polytope(inner, solver)
        assert not inner.contains_polytope(outer, solver)

    def test_containment_of_empty(self, solver):
        empty = ConvexPolytope.from_arrays([[1.0], [-1.0]], [-1.0, -1.0])
        box = ConvexPolytope.unit_box(1)
        assert box.contains_polytope(empty, solver)

    def test_remove_redundant(self, solver):
        box = ConvexPolytope.unit_box(1)
        loose = box.with_constraint(LinearConstraint.make([1.0], 5.0))
        assert loose.num_constraints == 3
        cleaned = loose.remove_redundant(solver)
        assert cleaned.num_constraints == 2
        # Semantics preserved.
        for x in (0.0, 0.5, 1.0):
            assert cleaned.contains_point([x]) == loose.contains_point([x])

    def test_cell_tag_propagation(self):
        box = ConvexPolytope.unit_box(2)
        box.cell_tag = ("cell", 7)
        child = box.with_constraint(LinearConstraint.make([1.0, 0.0], 0.5))
        assert child.cell_tag == ("cell", 7)
        other = ConvexPolytope.unit_box(2)
        assert box.intersect(other).cell_tag == ("cell", 7)
        assert other.intersect(box).cell_tag == ("cell", 7)


class TestGeometryHelpers:
    def test_bounding_box(self, solver):
        p = ConvexPolytope.box([0.25, -1.0], [0.75, 2.0])
        lows, highs = p.bounding_box(solver)
        assert lows == pytest.approx([0.25, -1.0])
        assert highs == pytest.approx([0.75, 2.0])

    def test_bounding_box_empty_raises(self, solver):
        empty = ConvexPolytope.from_arrays([[1.0], [-1.0]], [-1.0, -1.0])
        with pytest.raises(EmptyRegionError):
            empty.bounding_box(solver)

    def test_vertices_of_square(self, solver):
        p = ConvexPolytope.unit_box(2)
        verts = sorted(tuple(np.round(v, 6)) for v in p.vertices(solver))
        assert verts == [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)]

    def test_vertices_of_triangle(self, solver):
        p = ConvexPolytope.from_arrays(
            [[-1.0, 0.0], [0.0, -1.0], [1.0, 1.0]], [0.0, 0.0, 1.0])
        assert len(p.vertices(solver)) == 3

    def test_sample_grid_points(self, solver):
        p = ConvexPolytope.unit_box(2)
        pts = p.sample_grid_points(solver, per_axis=3)
        assert len(pts) == 9
        assert all(p.contains_point(x) for x in pts)
