"""Stacked-tableau batch simplex: oracle equivalence and accounting.

The kernel promises answers bit-identical to the scalar
:func:`repro.lp.solve_simplex` (same pivot trajectories on the same
floats) with stragglers flagged for the per-problem fallback.  These
property-style tests drive randomized LP batches — optimal, degenerate,
infeasible and unbounded instances — through the stacked kernel, the
scalar simplex and scipy, compare exact float representations, and pin
down the ``solve_many`` accounting contract (solved/cache counters
unchanged, per-group wall-time attribution, batch counters populated).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.lp.solver as solver_mod
from repro.core import encode_result
from repro.lp import (LinearProgramSolver, LPStats, make_solver,
                      solve_simplex)
from repro.lp.batch_simplex import (is_stackable, solve_simplex_batch,
                                    standard_form)
from repro.query import QueryGenerator
from repro.service.registry import get_scenario


def _random_problems(n: int, m: int, count: int, seed: int) -> list[tuple]:
    """Random LPs of one shape: optimal, infeasible, unbounded, degenerate."""
    rng = np.random.default_rng(seed)
    problems = []
    for index in range(count):
        a = rng.normal(size=(m, n))
        kind = index % 4
        if kind == 0:  # feasible around a known interior point
            anchor = rng.uniform(-1, 1, size=n)
            b = a @ anchor + rng.uniform(0.1, 2.0, size=m)
            c = rng.normal(size=n)
        elif kind == 1:  # infeasible: d @ x <= -1 and -d @ x <= -1
            direction = rng.normal(size=n)
            a[0], a[1] = direction, -direction
            b = rng.uniform(0.1, 1.0, size=m)
            b[0] = b[1] = -1.0
            c = rng.normal(size=n)
        elif kind == 2:  # unbounded: all-positive rows, min sum(x)
            a = np.abs(a)
            b = rng.uniform(0.5, 2.0, size=m)
            c = np.ones(n)
        else:  # degenerate: duplicated constraint rows
            anchor = rng.uniform(-1, 1, size=n)
            b = a @ anchor + rng.uniform(0.0, 1.0, size=m)
            a[m // 2] = a[0]
            b[m // 2] = b[0]
            c = rng.normal(size=n)
        problems.append((c, a, b, None))
    return problems


def _exactly_equal(got, want) -> bool:
    if got.status != want.status:
        return False
    if got.status != "optimal":
        return True
    return bool((got.x == want.x).all()) and got.objective == want.objective


class TestKernelOracle:
    """solve_simplex_batch vs. the scalar simplex and scipy."""

    @pytest.mark.parametrize("n,m,seed", [
        (1, 4, 0), (2, 8, 1), (3, 12, 2), (5, 20, 3), (2, 8, 4),
        (3, 12, 5),
    ])
    def test_bit_identical_to_scalar(self, n, m, seed):
        solver = LinearProgramSolver(stats=LPStats(), backend="simplex")
        problems = [solver._prepare(*problem)
                    for problem in _random_problems(n, m, 24, seed)]
        forms = [standard_form(*problem) for problem in problems]
        groups: dict[tuple, list[int]] = {}
        for index, form in enumerate(forms):
            groups.setdefault(form.signature, []).append(index)
        checked = 0
        for members in groups.values():
            report = solve_simplex_batch([forms[i] for i in members])
            assert report.rounds > 0
            assert report.round_slots == report.rounds * len(members)
            for position, index in enumerate(members):
                result = report.results[position]
                if result is None:
                    continue  # flagged straggler: scalar path solves it
                reference = solve_simplex(*problems[index])
                assert _exactly_equal(result, reference)
                checked += 1
        assert checked > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_scipy_on_feasible(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n, m = 3, 10
        problems = []
        for __ in range(8):
            a = rng.normal(size=(m, n))
            anchor = rng.uniform(-1, 1, size=n)
            # Positive right-hand sides (the region contains the
            # origin), so every problem shares one zero-artificial
            # stacking signature.
            b = np.abs(a @ anchor) + rng.uniform(0.1, 2.0, size=m)
            box = np.vstack([a, -np.eye(n), np.eye(n)])
            rhs = np.concatenate([b, 5.0 * np.ones(2 * n)])
            problems.append((rng.normal(size=n), box, rhs, None))
        solver = LinearProgramSolver(stats=LPStats(), backend="simplex")
        prepared = [solver._prepare(*problem) for problem in problems]
        forms = [standard_form(*problem) for problem in prepared]
        assert len({form.signature for form in forms}) == 1
        report = solve_simplex_batch(forms)
        scipy_solver = make_solver(backend="scipy")
        for problem, result in zip(problems, report.results):
            assert result is not None
            reference = scipy_solver.solve(*problem)
            assert result.status == reference.status == "optimal"
            assert result.objective == pytest.approx(reference.objective,
                                                     abs=1e-6)

    def test_signature_mismatch_rejected(self):
        solver = LinearProgramSolver(stats=LPStats(), backend="simplex")
        small = standard_form(*solver._prepare(
            [1.0], [[-1.0]], [0.0], None))
        large = standard_form(*solver._prepare(
            [1.0, 1.0], [[-1.0, 0.0], [0.0, -1.0]], [0.0, 0.0], None))
        with pytest.raises(ValueError):
            solve_simplex_batch([small, large])

    def test_unstackable_signature(self):
        solver = LinearProgramSolver(stats=LPStats(), backend="simplex")
        form = standard_form(*solver._prepare([1.0, -2.0], None, None,
                                              None))
        assert not is_stackable(form.signature)


class TestSolveManyStacked:
    """The solve_many seam: grouping, accounting, fallback, dedupe."""

    def _problems(self, count=12, seed=7):
        return _random_problems(3, 10, count, seed)

    def test_results_and_counters_match_scalar_path(self, monkeypatch):
        problems = self._problems()
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 2)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar_solver = LinearProgramSolver(stats=LPStats())
        scalar = scalar_solver.solve_many(problems, purpose="unit")
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        stacked_solver = LinearProgramSolver(stats=LPStats())
        stacked = stacked_solver.solve_many(problems, purpose="unit")
        for got, want in zip(stacked, scalar):
            assert _exactly_equal(got, want)
        assert stacked_solver.stats.solved == scalar_solver.stats.solved
        assert stacked_solver.stats.infeasible == scalar_solver.stats.infeasible
        assert stacked_solver.stats.unbounded == scalar_solver.stats.unbounded
        assert stacked_solver.stats.by_purpose() == \
            scalar_solver.stats.by_purpose()
        assert stacked_solver.stats.batch_solves > 0
        assert stacked_solver.stats.batch_rounds > 0
        assert 0.0 < stacked_solver.stats.batch_occupancy() <= 1.0
        assert scalar_solver.stats.batch_solves == 0

    def test_scalar_kernels_env_disables_stacking(self, monkeypatch):
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 2)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        solver = LinearProgramSolver(stats=LPStats())
        solver.solve_many(self._problems(), purpose="unit")
        assert solver.stats.batch_groups == 0

    def test_in_batch_duplicates_stay_cache_hits(self, monkeypatch):
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 2)
        problems = self._problems(count=8)
        duplicated = problems + problems[:3]
        for env in ("1", ""):
            monkeypatch.setenv("REPRO_SCALAR_KERNELS", env)
            solver = LinearProgramSolver(stats=LPStats(), cache_size=64)
            results = solver.solve_many(duplicated, purpose="unit")
            assert solver.stats.solved == len(problems)
            assert solver.stats.cache_hits == 3
            for original, duplicate in zip(results[:3], results[-3:]):
                assert original is duplicate

    def test_per_problem_purposes_attributed_per_group(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 2)
        problems = self._problems(count=10)
        purposes = ["alpha" if i % 2 == 0 else "beta"
                    for i in range(len(problems))]
        solver = LinearProgramSolver(stats=LPStats())
        solver.solve_many(problems, purpose=purposes)
        assert solver.stats.by_purpose() == {"alpha": 5, "beta": 5}
        seconds = solver.stats.seconds_by_purpose()
        # Every purpose of a stacked group gets its own share of the
        # group's wall clock (the misattribution fix).
        assert seconds["alpha"] > 0.0
        assert seconds["beta"] > 0.0
        assert solver.stats.seconds == pytest.approx(
            seconds["alpha"] + seconds["beta"])

    def test_purpose_count_mismatch_rejected(self):
        solver = LinearProgramSolver(stats=LPStats())
        from repro.errors import SolverError
        with pytest.raises(SolverError):
            solver.solve_many(self._problems(count=4),
                              purpose=["only-one"])

    def test_flagged_stragglers_fall_back_to_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 2)
        problems = self._problems(count=8)
        real_batch = solver_mod.solve_simplex_batch

        def flag_first(forms):
            report = real_batch(forms)
            results = list(report.results)
            flagged = 1 if results[0] is not None else 0
            results[0] = None
            return type(report)(
                results=results, rounds=report.rounds,
                active_rounds=report.active_rounds,
                round_slots=report.round_slots,
                problem_rounds=report.problem_rounds,
                fallbacks=report.fallbacks + flagged,
                seconds=report.seconds)

        monkeypatch.setattr(solver_mod, "solve_simplex_batch", flag_first)
        solver = LinearProgramSolver(stats=LPStats())
        stacked = solver.solve_many(problems, purpose="unit")
        assert solver.stats.batch_fallbacks >= 1
        assert solver.stats.solved == len(problems)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        reference_solver = LinearProgramSolver(stats=LPStats())
        reference = reference_solver.solve_many(problems, purpose="unit")
        for got, want in zip(stacked, reference):
            assert _exactly_equal(got, want)


class TestBatchCounters:
    def test_merge_and_reset(self):
        one, two = LPStats(), LPStats()
        one.record_batch(group_size=4, solved=4, rounds=6,
                         active_rounds=20, fallbacks=0)
        two.record_batch(group_size=8, solved=7, rounds=5,
                         active_rounds=30, fallbacks=1)
        one.merge(two)
        assert one.batch_groups == 2
        assert one.batch_solves == 11
        assert one.batch_rounds == 11
        assert one.batch_fallbacks == 1
        assert one.batch_round_slots == 4 * 6 + 8 * 5
        assert one.batch_occupancy() == pytest.approx(50 / 64)
        one.reset()
        assert one.batch_groups == 0
        assert one.batch_occupancy() == 0.0

    def test_add_seconds_has_no_solve_side_effects(self):
        stats = LPStats()
        stats.add_seconds("emptiness", 0.25)
        assert stats.solved == 0
        assert stats.seconds == pytest.approx(0.25)
        assert stats.seconds_by_purpose() == {"emptiness": 0.25}

    def test_optimizer_stats_summary_exposes_batch_counters(self):
        from repro.core.stats import OptimizerStats
        stats = OptimizerStats()
        stats.lp_stats.record_batch(group_size=4, solved=4, rounds=3,
                                    active_rounds=10, fallbacks=0)
        summary = stats.summary()
        assert summary["batch_lp_rounds"] == 3
        assert summary["batch_lp_solves"] == 4
        assert summary["batch_lp_fallbacks"] == 0
        assert summary["batch_lp_occupancy"] == pytest.approx(10 / 12)


class TestFullRunEquivalence:
    """Whole optimizations: stacked kernel forced on vs. both baselines."""

    @pytest.mark.parametrize("scenario,seed,num_tables,shape", [
        ("cloud", 0, 4, "chain"),
        ("cloud", 1, 3, "star"),
        ("approx", 2, 4, "chain"),
    ])
    def test_plan_sets_bit_identical(self, monkeypatch, scenario, seed,
                                     num_tables, shape):
        query = QueryGenerator(seed=seed).generate(num_tables, shape, 1)
        # Baseline 1: fully scalar geometry loops (plan-set oracle; its
        # LP *count* legitimately differs — the batched region
        # difference drops the scalar prefix-emptiness LPs).
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        scalar = get_scenario(scenario).optimize(query)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "")
        # Baseline 2: batched geometry with per-problem pivoting only
        # (stacking disabled via an unreachable threshold) — the exact
        # path the stacked kernel replaces, counter for counter.
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 10 ** 9)
        per_lp = get_scenario(scenario).optimize(query)
        # Force even tiny miss groups through the stacked kernel so the
        # whole run's LPs exercise it, not just the occasional wide
        # batch.
        monkeypatch.setattr(solver_mod, "MIN_STACK_GROUP", 2)
        stacked = get_scenario(scenario).optimize(query)
        stacked_doc = json.dumps(encode_result(stacked), sort_keys=True)
        assert stacked_doc == json.dumps(encode_result(scalar),
                                         sort_keys=True)
        assert stacked_doc == json.dumps(encode_result(per_lp),
                                         sort_keys=True)
        assert stacked.stats.lps_solved == per_lp.stats.lps_solved
        assert (stacked.stats.lp_stats.by_purpose()
                == per_lp.stats.lp_stats.by_purpose())
        assert stacked.stats.batch_lp_solves > 0
        assert stacked.stats.batch_lp_fallbacks == 0
        assert per_lp.stats.batch_lp_solves == 0
        for counter in ("plans_created", "plans_inserted",
                        "plans_discarded_new", "plans_displaced_old"):
            assert (getattr(stacked.stats, counter)
                    == getattr(scalar.stats, counter)), counter
            assert (getattr(stacked.stats, counter)
                    == getattr(per_lp.stats, counter)), counter
