"""Unit tests for polytope differences and union-convexity recognition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (ConvexPolytope, envelope, subtract_polytope,
                            subtract_polytopes, union_as_polytope,
                            union_covers)


def covers_samples(pieces, base, excluded, samples=200, seed=0):
    """Check pieces == base minus excluded on random sample points."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(samples, base.dim))
    for x in pts:
        in_base = base.contains_point(x)
        in_excl = any(e.contains_point(x, tol=-1e-9) for e in excluded)
        in_pieces = any(p.contains_point(x) for p in pieces)
        if in_base and not in_excl and not in_pieces:
            return False
        if not in_base and in_pieces:
            return False
    return True


class TestSubtractPolytope:
    def test_middle_cut_interval(self, solver):
        base = ConvexPolytope.box([0.0], [1.0])
        cut = ConvexPolytope.box([0.4], [0.6])
        pieces = subtract_polytope(base, cut, solver)
        assert len(pieces) == 2
        assert covers_samples(pieces, base, [cut])

    def test_cut_covering_base(self, solver):
        base = ConvexPolytope.box([0.2], [0.8])
        cut = ConvexPolytope.box([0.0], [1.0])
        assert subtract_polytope(base, cut, solver) == []

    def test_disjoint_cut_returns_base(self, solver):
        base = ConvexPolytope.box([0.0], [0.3])
        cut = ConvexPolytope.box([0.5], [0.9])
        pieces = subtract_polytope(base, cut, solver)
        assert len(pieces) == 1
        assert pieces[0] is base

    def test_corner_cut_square(self, solver):
        base = ConvexPolytope.unit_box(2)
        cut = ConvexPolytope.box([0.0, 0.0], [0.5, 0.5])
        pieces = subtract_polytope(base, cut, solver)
        assert pieces
        assert covers_samples(pieces, base, [cut])

    def test_subtracting_universe(self, solver):
        base = ConvexPolytope.unit_box(2)
        assert subtract_polytope(base, ConvexPolytope.universe(2),
                                 solver) == []

    def test_boundary_touching_cut_is_noop(self, solver):
        base = ConvexPolytope.box([0.0], [0.5])
        cut = ConvexPolytope.box([0.5], [1.0])  # shares only the point 0.5
        pieces = subtract_polytope(base, cut, solver)
        assert len(pieces) == 1


class TestSubtractPolytopes:
    def test_two_halves_cover(self, solver):
        base = ConvexPolytope.unit_box(2)
        left = ConvexPolytope.box([0.0, 0.0], [0.5, 1.0])
        right = ConvexPolytope.box([0.5, 0.0], [1.0, 1.0])
        assert subtract_polytopes(base, [left, right], solver) == []
        assert union_covers(base, [left, right], solver)

    def test_partial_cover_leaves_pieces(self, solver):
        base = ConvexPolytope.unit_box(2)
        left = ConvexPolytope.box([0.0, 0.0], [0.5, 1.0])
        pieces = subtract_polytopes(base, [left], solver)
        assert pieces
        assert covers_samples(pieces, base, [left])
        assert not union_covers(base, [left], solver)

    def test_order_independent_emptiness(self, solver):
        base = ConvexPolytope.box([0.0], [1.0])
        cuts = [ConvexPolytope.box([0.0], [0.4]),
                ConvexPolytope.box([0.3], [0.7]),
                ConvexPolytope.box([0.6], [1.0])]
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2]):
            assert subtract_polytopes(
                base, [cuts[i] for i in order], solver) == []

    def test_empty_base(self, solver):
        base = ConvexPolytope.from_arrays([[1.0], [-1.0]], [-1.0, -1.0])
        assert subtract_polytopes(
            base, [ConvexPolytope.unit_box(1)], solver) == []


class TestEnvelopeAndConvexity:
    def test_adjacent_boxes_union_is_convex(self, solver):
        left = ConvexPolytope.box([0.0, 0.0], [0.5, 1.0])
        right = ConvexPolytope.box([0.5, 0.0], [1.0, 1.0])
        union = union_as_polytope([left, right], solver)
        assert union is not None
        # The union must equal the unit square.
        square = ConvexPolytope.unit_box(2)
        assert union.contains_polytope(square, solver)
        assert square.contains_polytope(union, solver)

    def test_l_shape_is_not_convex(self, solver):
        bottom = ConvexPolytope.box([0.0, 0.0], [1.0, 0.5])
        left = ConvexPolytope.box([0.0, 0.0], [0.5, 1.0])
        assert union_as_polytope([bottom, left], solver) is None

    def test_disjoint_boxes_not_convex(self, solver):
        a = ConvexPolytope.box([0.0], [0.2])
        b = ConvexPolytope.box([0.8], [1.0])
        assert union_as_polytope([a, b], solver) is None

    def test_single_polytope_is_itself(self, solver):
        p = ConvexPolytope.unit_box(2)
        assert union_as_polytope([p], solver) is p

    def test_overlapping_boxes_union_convex(self, solver):
        a = ConvexPolytope.box([0.0], [0.7])
        b = ConvexPolytope.box([0.4], [1.0])
        union = union_as_polytope([a, b], solver)
        assert union is not None
        assert union.contains_point([0.0])
        assert union.contains_point([1.0])

    def test_envelope_contains_union(self, solver):
        a = ConvexPolytope.box([0.0, 0.0], [0.4, 0.4])
        b = ConvexPolytope.box([0.6, 0.6], [1.0, 1.0])
        env = envelope([a, b], solver)
        for p in (a, b):
            assert env.contains_polytope(p, solver)

    def test_envelope_requires_input(self, solver):
        with pytest.raises(ValueError):
            envelope([], solver)

    def test_nested_polytopes(self, solver):
        outer = ConvexPolytope.unit_box(2)
        inner = ConvexPolytope.box([0.3, 0.3], [0.6, 0.6])
        union = union_as_polytope([outer, inner], solver)
        assert union is not None
        assert union.contains_polytope(outer, solver)
