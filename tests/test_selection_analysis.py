"""Tests for run-time plan selection and the Section 4 analysis module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (all_examples, check_m1_on,
                            check_m2_nonconvex_pareto_region, check_m3b,
                            check_s1_single_metric,
                            check_theorem2_dominance_convex, figure4,
                            figure5, figure6, pareto_plans_at,
                            pvi_pareto_count, theorem6_observation)
from repro.core import PlanSelector, optimize_cloud_query
from repro.cost import PiecewiseLinearFunction
from repro.errors import OptimizationError
from repro.geometry import ConvexPolytope
from repro.query import QueryGenerator


@pytest.fixture(scope="module")
def result():
    query = QueryGenerator(seed=17).generate(4, "chain", 1)
    return optimize_cloud_query(query, resolution=2)


class TestPlanSelector:
    def test_weighted_sum_picks_minimum(self, result):
        selector = PlanSelector(result)
        x = [0.5]
        pick = selector.by_weighted_sum(x, {"time": 1.0, "fees": 1.0})
        for entry in result.plans_for(x):
            cost = entry.cost.evaluate(x)
            assert pick.score <= cost["time"] + cost["fees"] + 1e-9

    def test_extreme_weights_pick_extremes(self, result):
        selector = PlanSelector(result)
        x = [0.5]
        fastest = selector.by_weighted_sum(x, {"time": 1.0})
        cheapest = selector.by_weighted_sum(x, {"fees": 1.0})
        assert fastest.cost["time"] <= cheapest.cost["time"] + 1e-12
        assert cheapest.cost["fees"] <= fastest.cost["fees"] + 1e-12

    def test_negative_weights_rejected(self, result):
        with pytest.raises(ValueError):
            PlanSelector(result).by_weighted_sum([0.5], {"time": -1.0})

    def test_bounded_metric(self, result):
        selector = PlanSelector(result)
        x = [0.5]
        cheapest = selector.by_weighted_sum(x, {"fees": 1.0})
        budget = cheapest.cost["fees"] * 1.5
        pick = selector.by_bounded_metric(x, minimize="time",
                                          bounds={"fees": budget})
        assert pick.cost["fees"] <= budget + 1e-9
        # No relevant plan under budget is faster.
        for entry in result.plans_for(x):
            cost = entry.cost.evaluate(x)
            if cost["fees"] <= budget + 1e-12:
                assert pick.cost["time"] <= cost["time"] + 1e-9

    def test_impossible_bound_raises(self, result):
        selector = PlanSelector(result)
        with pytest.raises(OptimizationError):
            selector.by_bounded_metric([0.5], minimize="time",
                                       bounds={"fees": 0.0})

    def test_frontier_matches_result(self, result):
        selector = PlanSelector(result)
        x = [0.3]
        assert selector.frontier(x) == result.frontier_at(x)

    def test_candidates_cached(self, result):
        selector = PlanSelector(result)
        selector.by_weighted_sum([0.25], {"time": 1.0})
        assert len(selector._cache) == 1
        selector.by_weighted_sum([0.25], {"fees": 1.0})
        assert len(selector._cache) == 1

    def test_candidates_cache_bounded(self, result):
        selector = PlanSelector(result, cache_size=4)
        for x in np.linspace(0.05, 0.95, 20):
            selector.by_weighted_sum([x], {"time": 1.0})
        assert len(selector._cache) == 4
        # The most recent point is retained and served from cache.
        assert tuple(np.asarray([0.95]).tolist()) in selector._cache

    def test_cache_can_be_disabled(self, result):
        selector = PlanSelector(result, cache_size=0)
        a = selector.by_weighted_sum([0.25], {"time": 1.0})
        b = selector.by_weighted_sum([0.25], {"time": 1.0})
        assert len(selector._cache) == 0
        assert a.cost == b.cost

    def test_impossible_bound_reports_per_metric_best(self, result):
        selector = PlanSelector(result)
        x = [0.5]
        best_time = min(e.cost.evaluate(x)["time"]
                        for e in result.plans_for(x))
        best_fees = min(e.cost.evaluate(x)["fees"]
                        for e in result.plans_for(x))
        with pytest.raises(OptimizationError) as excinfo:
            selector.by_bounded_metric(x, minimize="time",
                                       bounds={"fees": 0.0,
                                               "time": best_time * 2})
        # Each bounded metric reports its own best-achievable value, not
        # a minimum mixed across all bounded metrics.
        message = str(excinfo.value)
        assert f"fees: best achievable {best_fees:.4g}" in message
        assert f"time: best achievable {best_time:.4g}" in message


class TestCounterExamples:
    def test_figure4_pareto_sets(self):
        ex = figure4()
        # Plan 2 Pareto-optimal at the extremes, dominated in the middle.
        assert "plan2" in pareto_plans_at(ex, [0.2])
        assert "plan2" not in pareto_plans_at(ex, [1.5])
        assert "plan2" in pareto_plans_at(ex, [2.8])
        # Plan 1 Pareto-optimal everywhere.
        for x in np.linspace(0, 3, 13):
            assert "plan1" in pareto_plans_at(ex, [x])

    def test_figure5_dominance_square(self):
        ex = figure5()
        assert "plan2" not in pareto_plans_at(ex, [0.5, 0.5])
        assert "plan2" in pareto_plans_at(ex, [1.5, 0.5])
        assert "plan2" in pareto_plans_at(ex, [0.5, 1.5])

    def test_figure6_interior_only(self):
        ex = figure6()
        assert "plan3" not in pareto_plans_at(ex, [0.0])
        assert "plan3" not in pareto_plans_at(ex, [2.0])
        assert "plan3" in pareto_plans_at(ex, [1.0])
        for x in np.linspace(0, 2, 21):
            assert "plan1" in pareto_plans_at(ex, [x])
            assert "plan2" in pareto_plans_at(ex, [x])

    def test_all_examples_enumerable(self):
        examples = all_examples()
        assert [e.name for e in examples] == ["figure4", "figure5",
                                              "figure6"]


class TestTableOneStatements:
    def test_s1_holds_for_single_metric(self):
        space = ConvexPolytope.box([0.0], [1.0])
        costs = [PiecewiseLinearFunction.affine(space, [1.0], 0.0),
                 PiecewiseLinearFunction.affine(space, [-1.0], 1.0),
                 PiecewiseLinearFunction.constant(space, 0.75)]
        assert check_s1_single_metric(space, costs)

    def test_m1_fails_for_multi_metric(self):
        assert check_m1_on(figure4())

    def test_m2_nonconvex(self):
        assert check_m2_nonconvex_pareto_region(figure5())

    def test_m3b_interior_pareto(self):
        assert check_m3b(figure6())

    def test_theorem2_dominance_convex(self, solver):
        assert check_theorem2_dominance_convex(solver, trials=10)


class TestTheorem6:
    def test_pvi_count_bounded_for_small_samples(self):
        # The 2^((nX+1)nM) bound holds for the expectation at moderate
        # sample sizes (for i.i.d. uniform points the count grows like
        # (ln n)^3/6 and would exceed it for very large n).
        obs = theorem6_observation(num_plans=15, num_params=1,
                                   num_metrics=2, trials=5)
        assert obs.bound == 16.0
        assert obs.observed <= obs.bound

    def test_bound_grows_with_dimensions(self):
        small = theorem6_observation(30, num_params=1, num_metrics=1)
        large = theorem6_observation(30, num_params=2, num_metrics=2)
        assert large.bound > small.bound

    def test_pvi_deterministic(self):
        a = pvi_pareto_count(100, 1, 2, seed=3)
        b = pvi_pareto_count(100, 1, 2, seed=3)
        assert a == b

    def test_single_metric_no_params_single_winner_tendency(self):
        """With l=1 (one metric, no parameters) only the minimum survives."""
        assert pvi_pareto_count(200, 0, 1, seed=1) == 1
