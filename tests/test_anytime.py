"""Tests for the resumable anytime engine (repro.core.run).

Covers the tentpole guarantees of the anytime redesign:

* exactness — the final ladder rung at alpha = 0 produces bit-identical
  plan sets to the classic exact path under both built-in scenarios;
* resumability — a run advanced step by step, or exhausted under a
  budget and resumed with more, reaches the identical exact result;
* guarantee accounting — an interrupted run reports an alpha such that
  every possible plan is covered by a returned plan within the
  ``(1 + alpha) ** levels`` bound of alpha-dominance pruning;
* progress events — rungs tighten monotonically and carry consistent
  counters.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cloud import CloudCostModel
from repro.core import (Budget, PWLRRPA, RUN_COMPLETED, RUN_EXHAUSTED,
                        RUN_STOPPED, encode_result, guarantee_bound,
                        ladder_to, validate_ladder)
from repro.core.run import DEFAULT_PRECISION_LADDER
from repro.query import QueryGenerator
from repro.service.registry import get_scenario

from tests.helpers import enumerate_all_plans, pwl_plan_cost_at


def _doc_key(result) -> str:
    return json.dumps(encode_result(result), sort_keys=True)


def make_query(seed: int = 0, num_tables: int = 4):
    return QueryGenerator(seed=seed).generate(num_tables, "chain", 1)


class TestBudgetValidation:
    def test_negative_limits_rejected(self):
        for kwargs in ({"seconds": -1.0}, {"lps": -1}, {"steps": -1}):
            with pytest.raises(ValueError):
                Budget(**kwargs)

    def test_unlimited_and_roundtrip(self):
        assert Budget().unlimited
        budget = Budget(seconds=1.5, lps=10)
        assert not budget.unlimited
        assert Budget.from_dict(budget.as_dict()) == budget
        assert Budget.from_dict(None) is None


class TestLadderValidation:
    def test_must_be_strictly_decreasing(self):
        with pytest.raises(ValueError, match="decreasing"):
            validate_ladder((0.2, 0.5))
        with pytest.raises(ValueError, match="decreasing"):
            validate_ladder((0.2, 0.2))
        with pytest.raises(ValueError, match="empty"):
            validate_ladder(())
        with pytest.raises(ValueError, match=">= 0"):
            validate_ladder((0.5, -0.1))
        assert validate_ladder((0.5, 0.0)) == (0.5, 0.0)

    def test_ladder_to_truncates_default(self):
        assert ladder_to(0.0) == DEFAULT_PRECISION_LADDER
        assert ladder_to(0.2) == (0.5, 0.2)
        assert ladder_to(0.3) == (0.5, 0.3)
        with pytest.raises(ValueError):
            ladder_to(-0.1)


@pytest.fixture(scope="module")
def query():
    return make_query(seed=11)


@pytest.fixture(scope="module", params=["cloud", "approx"])
def scenario_name(request):
    return request.param


class TestExactEquivalence:
    """Acceptance: the alpha=0 rung is bit-identical to the exact path."""

    def test_final_rung_bit_identical(self, query, scenario_name):
        scenario = get_scenario(scenario_name)
        exact = scenario.optimize(query)
        run = scenario.start_run(query,
                                 precision_ladder=(0.5, 0.2, 0.0))
        assert run.run() == RUN_COMPLETED
        assert run.done
        final = run.result()
        assert final.achieved_alpha == 0.0
        assert final.guarantee == 1.0
        assert _doc_key(final) == _doc_key(exact)

    def test_single_rung_run_matches_monolithic(self, query):
        """RRPA.optimize is now a wrapper over the engine; driving the
        engine by hand step by step gives the same result."""
        optimizer = PWLRRPA(
            cost_model_factory=lambda q: CloudCostModel(q, resolution=2))
        monolithic = optimizer.optimize(query)
        run = optimizer.start_run(query)
        steps = 0
        while not run.done:
            run.step()
            steps += 1
        assert steps == len(run.events) - 1  # rung_started + 1/step
        assert _doc_key(run.result()) == _doc_key(monolithic)


class TestResumption:
    def test_step_budget_pause_resume(self, query):
        scenario = get_scenario("cloud")
        exact = scenario.optimize(query)
        run = scenario.start_run(query, precision_ladder=(0.5, 0.0))
        statuses = []
        while not run.done:
            statuses.append(run.run(Budget(steps=2)))
        assert statuses[-1] == RUN_COMPLETED
        assert RUN_EXHAUSTED in statuses[:-1]
        assert _doc_key(run.result()) == _doc_key(exact)

    def test_exhausted_run_resumed_reaches_exact(self, query,
                                                 scenario_name):
        """Satellite: budget exhaustion mid-run, then resume to exact."""
        scenario = get_scenario(scenario_name)
        exact = scenario.optimize(query)
        run = scenario.start_run(query, precision_ladder=ladder_to(0.0))
        # Exhaust a small LP budget somewhere mid-ladder.
        status = run.run(Budget(lps=40))
        assert status == RUN_EXHAUSTED
        assert not run.done
        # Resume with unlimited budget: identical exact result.
        assert run.run() == RUN_COMPLETED
        assert run.result().achieved_alpha == 0.0
        assert _doc_key(run.result()) == _doc_key(exact)

    def test_request_stop_is_cooperative(self, query):
        run = get_scenario("cloud").start_run(
            query, precision_ladder=(0.5, 0.0))
        run.request_stop()
        assert run.run() == RUN_STOPPED
        assert not run.done
        assert run.run() == RUN_COMPLETED  # flag was consumed


class TestGuaranteeAccounting:
    def test_interrupted_run_guarantee_is_valid(self):
        """Acceptance: every returned plan set of an interrupted run is
        within its reported (1+alpha)-style bound of Pareto-optimal."""
        query = make_query(seed=101)
        model = CloudCostModel(query, resolution=2)
        optimizer = PWLRRPA()
        run = optimizer.start_run_with_model(
            query, model, precision_ladder=(0.5, 0.25, 0.0))
        # Interrupt after the second rung (alpha = 0.25) completes.
        while len(run.completed) < 2:
            run.step()
        assert run.achieved_alpha == 0.25
        bound = run.guarantee
        assert bound == guarantee_bound(0.25, query.num_tables)
        entries = run.result().entries
        all_plans = enumerate_all_plans(query, model)
        for plan in all_plans[::7]:  # sample the space, keep test fast
            for x in (np.array([v]) for v in (0.1, 0.5, 0.9)):
                cost = pwl_plan_cost_at(model, plan, x)
                assert any(
                    all(e.cost.evaluate(x)[m] <= cost[m] * bound + 1e-9
                        for m in cost)
                    for e in entries)

    def test_no_result_before_first_rung(self, query):
        run = get_scenario("cloud").start_run(
            query, precision_ladder=(0.5, 0.0))
        assert run.run(Budget(steps=1)) == RUN_EXHAUSTED
        assert not run.has_result
        assert run.result() is None
        assert run.achieved_alpha is None
        assert run.guarantee is None


class TestProgressEvents:
    def test_rungs_tighten_and_counters_monotone(self, query):
        run = get_scenario("cloud").start_run(
            query, precision_ladder=(0.5, 0.2, 0.0))
        seen = []
        run.on_event = seen.append
        run.run()
        assert seen == run.events
        rungs = [e for e in run.events if e.kind == "rung_completed"]
        assert [e.alpha for e in rungs] == [0.5, 0.2, 0.0]
        assert [e.guarantee for e in rungs] == [
            guarantee_bound(a, query.num_tables) for a in (0.5, 0.2, 0.0)]
        # Coarser rungs keep (weakly) fewer plans; LP counters grow.
        counts = [e.plan_count for e in rungs]
        assert counts == sorted(counts)
        lps = [e.lps_solved for e in run.events]
        assert lps == sorted(lps)
        # Events survive a dict round trip (the pooled shipping format).
        for event in run.events:
            doc = event.as_dict()
            assert type(event).from_dict(doc).as_dict() == doc

    def test_warm_start_reuses_cost_functions(self, query):
        """Rung N+1 reuses the cost objects rung N built (same object)."""
        run = get_scenario("cloud").start_run(
            query, precision_ladder=(0.5, 0.0))
        run.run()
        coarse, exact = run.completed
        coarse_costs = {id(e.cost) for entries
                        in coarse.result.dp_table.values()
                        for e in entries}
        shared = [e for entries in exact.result.dp_table.values()
                  for e in entries if id(e.cost) in coarse_costs]
        assert shared  # warm start actually kicked in


class TestBackendSupport:
    def test_ladder_requires_alpha_support(self, query):
        """Multi-rung ladders need set_approximation_factor; the generic
        grid backend (exact-only) rejects them."""
        from repro.core import GridBackend, RRPA

        backend = GridBackend(query, CloudCostModel(query, resolution=2))
        assert RRPA(backend).optimize(query).entries  # exact path works
        run = RRPA(backend).start_run(query, precision_ladder=(0.5, 0.0))
        with pytest.raises(NotImplementedError, match="ladder"):
            run.run()
