"""Regenerate Figure 12: the paper's full experimental evaluation.

Sweeps chain and star queries over table counts with 1 and 2 parameters,
optimizing several random queries per point with PWL-RRPA and reporting
the medians of optimization time, #created plans and #solved LPs — the
exact quantities of the paper's Figure 12, as tables plus ASCII log-scale
charts.

Run with::

    python examples/figure12.py            # quick profile (minutes)
    python examples/figure12.py --full     # larger profile (tens of min)

The table counts are scaled down relative to the paper's 12-table maximum
(pure-Python LP solving; see EXPERIMENTS.md for the calibration), but the
trends — superlinear growth in tables, extra cost per parameter, star
above chain, #LPs well above #plans — are all reproduced.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import FULL, QUICK, figure12_report, run_sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the larger sweep profile")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for workload generation")
    args = parser.parse_args(argv)

    profile = FULL if args.full else QUICK
    print(f"Running Figure 12 sweep, profile '{profile.name}' "
          f"({profile.queries_per_point} queries per point)...",
          flush=True)

    chain = run_sweep(profile, "chain", base_seed=args.seed)
    print("chain sweep done.", flush=True)
    star = run_sweep(profile, "star", base_seed=args.seed)
    print("star sweep done.\n", flush=True)

    print(figure12_report(chain, star))
    return 0


if __name__ == "__main__":
    sys.exit(main())
