"""Anytime optimization: precision ladders, budgets, progress events.

A serving system rarely wants to block until the *exact* Pareto plan set
is ready — it wants the best guaranteed plan set *now*, refined while
time remains.  This example drives the anytime API three ways:

1. ``session.optimize_iter`` — stream successively tighter plan sets
   over a precision ladder; every ``rung_completed`` event carries a
   plan set valid within its ``(1 + alpha) ** tables`` guarantee.
2. ``session.optimize(precision=..., budget=...)`` — one call, best
   guaranteed result within a cooperative budget (works identically on
   pooled sessions: the worker stops itself, no pool teardown).
3. ``PWLRRPA.start_run`` — the resumable engine without a session:
   pause at any step boundary, resume with more budget, finish exact.
"""

from __future__ import annotations

from repro.api import Budget, OptimizerSession
from repro.cloud import CloudCostModel
from repro.core import PWLRRPA, RUN_EXHAUSTED
from repro.query import QueryGenerator

query = QueryGenerator(seed=5).generate(num_tables=4, shape="chain",
                                        num_params=1)
weights = {"time": 1.0, "fees": 0.4}

print("=== 1. Streaming refinement over a precision ladder ===")
with OptimizerSession("cloud") as session:
    for event in session.optimize_iter(
            query, precision_ladder=[0.5, 0.2, 0.05, 0.0]):
        if event.kind != "rung_completed":
            continue
        plan, cost = event.plan_set.select([0.4], weights)
        print(f"  alpha={event.alpha:<5} guarantee={event.guarantee:6.3f}x"
              f"  plans={event.plan_count:>3}  LPs={event.lps_solved:>6}"
              f"  best-at-0.4: time={cost['time']:.3f}")

print("\n=== 2. Best guaranteed plan set within a budget ===")
with OptimizerSession("cloud", warm_start=False) as session:
    item = session.optimize(query, precision=0.0,
                            budget=Budget(lps=300))
    print(f"  status={item.status}  achieved alpha={item.alpha}"
          f"  guarantee={item.guarantee:.3f}x"
          f"  plans={len(item.plan_set.entries)}")
    assert item.ok  # "partial" still carries a valid plan set

print("\n=== 3. Resumable run: exhaust, then resume to exact ===")
optimizer = PWLRRPA(
    cost_model_factory=lambda q: CloudCostModel(q, resolution=2))
run = optimizer.start_run(query, precision_ladder=(0.5, 0.2, 0.0))
status = run.run(Budget(steps=5))
print(f"  first call : {status} after {len(run.events)} events, "
      f"completed rungs: {[o.alpha for o in run.completed]}")
assert status == RUN_EXHAUSTED
status = run.run()  # resume with no budget: finish the ladder
result = run.result()
print(f"  second call: {status}, exact plan set of "
      f"{len(result.entries)} plans (alpha={result.achieved_alpha})")
