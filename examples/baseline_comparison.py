"""Compare MPQ (PWL-RRPA) with the three baselines it generalizes.

Demonstrates Section 1.1's argument experimentally:

* **CQ** (classical, Selinger): one plan, correct only for the parameter
  values and preference weights it was optimized for.
* **MQ** (multi-objective at a fixed parameter point): a Pareto frontier,
  but only valid at that point — re-optimizing at sampled points cannot
  guarantee covering the parameter space (statement M3b).
* **PQ** (parametric, single metric): covers all parameter values but only
  one metric — it cannot offer time/fees trade-offs.
* **MPQ** covers both dimensions at once.

Run with::

    python examples/baseline_comparison.py
"""

import numpy as np

from repro import CloudCostModel, PWLRRPA, QueryGenerator
from repro.baselines import ClassicalOptimizer, MQOptimizer, PQOptimizer
from repro.plans import one_line


def main() -> None:
    query = QueryGenerator(seed=23).generate(4, "chain", 1)
    model = CloudCostModel(query, resolution=2)
    print(f"Query: {query.num_tables}-table chain, 1 selectivity "
          f"parameter\n")

    # --- CQ: one plan for one anticipated selectivity -----------------
    anticipated = [0.1]
    classical = ClassicalOptimizer(model, anticipated,
                                   weights={"time": 1.0}).optimize(query)
    print(f"CQ (classical, optimized for selectivity {anticipated[0]}):")
    print(f"  plan: {one_line(classical.plan)}")
    # How badly does that single plan age across the parameter range?
    print("  time of that plan vs the per-point optimum:")
    for sel in (0.1, 0.5, 0.9):
        fixed = model.plan_cost_polynomials(classical.plan)[
            "time"].evaluate([sel])
        best = ClassicalOptimizer(model, [sel],
                                  weights={"time": 1.0}).optimize(query)
        ratio = fixed / best.cost
        print(f"    selectivity {sel}: {fixed:.4f}h vs optimal "
              f"{best.cost:.4f}h ({ratio:.2f}x)")

    # --- MQ: frontier at one point ------------------------------------
    mq = MQOptimizer(model, [0.5]).optimize(query)
    print(f"\nMQ (multi-objective at selectivity 0.5): "
          f"{len(mq.frontier)} Pareto plans at that point only")

    # --- PQ: parametric but single-metric -----------------------------
    pq = PQOptimizer(
        cost_model_factory=lambda q: CloudCostModel(q, resolution=2),
        metric="time").optimize(query)
    print(f"PQ (parametric, time only): {len(pq.entries)} plans covering "
          f"all selectivities, but no fee trade-offs")

    # --- MPQ -----------------------------------------------------------
    mpq = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
    ).optimize(query)
    print(f"MPQ (PWL-RRPA): {len(mpq.entries)} plans covering all "
          f"selectivities AND all time/fees trade-offs")

    # MPQ must contain a plan matching PQ's time-optimal plan everywhere.
    print("\nMPQ vs PQ time-optimality check:")
    worst = 0.0
    for sel in np.linspace(0.05, 0.95, 10):
        pq_best = min(e.cost.evaluate([sel])["time"] for e in pq.entries)
        mpq_best = min(e.cost.evaluate([sel])["time"] for e in mpq.entries)
        worst = max(worst, mpq_best / pq_best)
    print(f"  max (MPQ best time) / (PQ best time) over samples: "
          f"{worst:.6f}  (1.0 = MPQ never loses on time)")

    print("\nSummary: CQ returns 1 plan, MQ a frontier at one point, PQ a")
    print("parametric set for one metric; only MPQ covers parameters and")
    print("metrics simultaneously — at higher preprocessing cost "
          f"({mpq.stats.lps_solved} LPs).")


if __name__ == "__main__":
    main()
