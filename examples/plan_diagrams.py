"""Pareto plan diagrams: how plan sets tile the parameter space.

Computes the MPQ analogue of Reddy & Haritsa's plan diagrams (citation
[25] of the paper): each parameter-space point is labeled by the set of
Pareto-optimal plans there.  Shows a 1-parameter strip and a 2-parameter
map, making the region structure of Section 4 (non-convex, possibly
disconnected Pareto regions) directly visible.

Run with::

    python examples/plan_diagrams.py
"""

from repro import QueryGenerator
from repro.api import optimize_query
from repro.analysis import compute_diagram, render_diagram


def main() -> None:
    print("=" * 64)
    print("1 parameter: Pareto sets along the selectivity axis")
    print("=" * 64)
    query = QueryGenerator(seed=37).generate(num_tables=4, shape="chain",
                                             num_params=1)
    result = optimize_query(query, "cloud", resolution=2)
    diagram = compute_diagram(result, points_per_axis=61)
    print(render_diagram(diagram))

    non_interval = [i for i in range(len(diagram.plans))
                    if not diagram.plan_region_is_interval(i)]
    if non_interval:
        print(f"\nPlans with NON-contiguous Pareto regions "
              f"(statement M2 in the wild): {len(non_interval)}")
    else:
        print("\nAll plan regions are contiguous for this query "
              "(M2 says they need not be — see "
              "examples/problem_analysis.py for a guaranteed instance).")

    print()
    print("=" * 64)
    print("2 parameters: Pareto-set map over the selectivity square")
    print("=" * 64)
    query2 = QueryGenerator(seed=38).generate(num_tables=3, shape="chain",
                                              num_params=2)
    result2 = optimize_query(query2, "cloud", resolution=1)
    diagram2 = compute_diagram(result2, points_per_axis=25)
    print(render_diagram(diagram2))


if __name__ == "__main__":
    main()
