"""Scenario 1: Cloud time/fees trade-offs, including Figure 7's pruning.

Part A rebuilds the paper's Figure 7 situation with a two-table join:

* plan 1 uses the single-node hash join (no shuffle, cheaper fees, slower
  for large inputs);
* plan 2 uses the parallel hash join (shuffle makes it always more
  expensive, parallelism makes it faster once enough data flows).

The relevance region of the parallel plan — the selectivity range where it
stays relevant after pruning against the single-node plan — comes out as
an interval ``[s*, 1]``, reproducing the figure's shape (the paper's
constants put ``s*`` at 0.25).

Part B runs the full Scenario 1 workflow on a larger query: a Web user
submits predicate values, the Cloud provider shows the time/fees frontier,
and the user picks a trade-off ("fastest plan under a fee budget").

Run with::

    python examples/cloud_tradeoffs.py
"""

import numpy as np

from repro import PlanSelector, QueryGenerator
from repro.api import optimize_query
from repro.errors import OptimizationError
from repro.plans import one_line


def part_a_figure7() -> None:
    print("=" * 64)
    print("Part A — Figure 7: pruning the parallel join against the")
    print("single-node join on a 2-table query with one parameter")
    print("=" * 64)
    query = QueryGenerator(seed=3).generate(num_tables=2, shape="chain",
                                            num_params=1)
    result = optimize_query(query, "cloud", resolution=2)

    parallel_entries = [
        entry for entry in result.entries
        if any(getattr(node.operator, "parallel", False)
               for node in entry.plan.nodes())]
    print(f"\nPareto plans: {len(result.entries)} "
          f"({len(parallel_entries)} using the parallel join)")

    # Probe each plan's relevance region across the selectivity axis.
    xs = np.linspace(0.01, 0.99, 25)
    for entry in result.entries:
        marks = "".join("x" if entry.region.contains_point([x]) else "."
                        for x in xs)
        print(f"  {one_line(entry.plan):40s} RR: |{marks}|")
    print("  (selectivity 0 on the left, 1 on the right; 'x' = relevant)")


def part_b_web_interface() -> None:
    print()
    print("=" * 64)
    print("Part B — the Cloud provider's Web interface on a 5-table query")
    print("=" * 64)
    query = QueryGenerator(seed=11).generate(num_tables=5, shape="chain",
                                             num_params=1)
    result = optimize_query(query, "cloud", resolution=2)
    selector = PlanSelector(result)

    for selectivity in (0.05, 0.5, 0.95):
        x = [selectivity]
        print(f"\nUser submits predicates; observed selectivity "
              f"{selectivity}:")
        frontier = sorted(selector.frontier(x),
                          key=lambda pc: pc[1]["time"])
        for plan, cost in frontier:
            bar = "*" * max(1, int(cost["fees"] / frontier[0][1]["fees"]))
            print(f"  time={cost['time']:.4f}h fees=${cost['fees']:.4f} "
                  f"{bar:<10s} {one_line(plan)}")

        budget = frontier[0][1]["fees"] * 1.2
        try:
            pick = selector.by_bounded_metric(x, minimize="time",
                                              bounds={"fees": budget})
            print(f"  -> fastest plan under ${budget:.4f}: "
                  f"{one_line(pick.plan)} (time {pick.cost['time']:.4f}h)")
        except OptimizationError as exc:
            print(f"  -> no plan within budget: {exc}")


def main() -> None:
    part_a_figure7()
    part_b_web_interface()


if __name__ == "__main__":
    main()
