"""Batch service: optimize a stream of queries with workers and caching.

The paper's workflow (Figure 2) optimizes one MPQ instance at a time; this
example drives the serving layer built on top of it:

1. A mixed batch of random queries is optimized through one
   :class:`repro.api.OptimizerSession` — across worker processes when
   ``--workers`` > 1, with per-query error isolation either way.
2. ``session.map`` returns results in input order as
   run-time-selectable plan sets.
3. Repeated query shapes are answered from the session's warm-start
   cache without touching the optimizer (the second batch below is
   entirely warm), and the worker pool persists across both batches.

Run with::

    python examples/batch_service.py [--workers 4]
"""

import argparse
import time

from repro import QueryGenerator
from repro.api import OptimizerSession
from repro.plans import one_line


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = in-process serial)")
    args = parser.parse_args()

    queries = [QueryGenerator(seed=s).generate(num_tables=3, shape=shape,
                                               num_params=1)
               for s, shape in enumerate(("chain", "star", "chain",
                                          "star"))]

    with OptimizerSession("cloud", workers=args.workers) as session:
        started = time.perf_counter()
        items = session.map(queries)
        cold = time.perf_counter() - started
        print(f"Cold batch: {len(items)} queries in {cold:.2f}s "
              f"({len(items) / cold:.1f} q/s, workers={args.workers})\n")

        x = [0.4]
        for item in items:
            plan, cost = item.plan_set.select(x, {"time": 1.0,
                                                  "fees": 0.5})
            print(f"  #{item.index} [{item.status}] "
                  f"{len(item.plan_set.entries)} Pareto plans; "
                  f"picked time={cost['time']:.4f}h "
                  f"fees=${cost['fees']:.4f} {one_line(plan)}")

        started = time.perf_counter()
        warm_items = session.map(queries)
        warm = time.perf_counter() - started
        statuses = {item.status for item in warm_items}
        print(f"\nWarm batch: {len(warm_items)} queries in {warm:.3f}s "
              f"(statuses: {sorted(statuses)}; "
              f"cache hits={session.cache.hits}; "
              f"pool spawns={session.pool_spawns})")


if __name__ == "__main__":
    main()
