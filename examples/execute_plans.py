"""Close the loop: optimize, pick plans, and *execute* them.

Materializes the synthetic catalog as real data, runs PWL-RRPA, then
executes several Pareto plans at different run-time selectivities —
verifying on actual rows that (a) all plans compute the same result and
(b) the simulated execution costs reproduce the trade-offs the optimizer
predicted (the parallel plan's fees premium, the seek/scan crossover).

Run with::

    python examples/execute_plans.py
"""

from repro import PlanSelector, QueryGenerator
from repro.api import optimize_query
from repro.engine import Executor, generate_database
from repro.plans import one_line


def main() -> None:
    query = QueryGenerator(seed=29).generate(num_tables=3, shape="chain",
                                             num_params=1)
    database = generate_database(query.catalog, seed=1)
    executor = Executor(query, database)
    print("Materialized database:")
    for name in query.tables:
        print(f"  {name}: {database.table(name).num_rows} rows")

    result = optimize_query(query, "cloud", resolution=2)
    selector = PlanSelector(result)
    print(f"\nPWL-RRPA kept {len(result.entries)} Pareto plans.\n")

    for selectivity in (0.1, 0.8):
        x = [selectivity]
        fastest = selector.by_weighted_sum(x, {"time": 1.0})
        cheapest = selector.by_weighted_sum(x, {"fees": 1.0})
        print(f"Run-time selectivity {selectivity}:")
        for label, pick in (("fastest", fastest), ("cheapest", cheapest)):
            run = executor.execute(pick.plan, x)
            print(f"  {label:8s} {one_line(pick.plan)}")
            print(f"           predicted time={pick.cost['time']:.4f}h "
                  f"fees=${pick.cost['fees']:.4f}")
            print(f"           executed  time={run.time_hours:.4f}h "
                  f"fees=${run.fees_usd:.4f}  "
                  f"rows={run.num_rows}")
        same = (executor.execute(fastest.plan, x).num_rows
                == executor.execute(cheapest.plan, x).num_rows)
        print(f"  -> both plans return identical row counts: {same}\n")


if __name__ == "__main__":
    main()
