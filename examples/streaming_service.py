"""Streaming service: one session, results as they finish, two scenarios.

The unified :class:`repro.api.OptimizerSession` is the single front door
for optimization.  This example drives its three submission surfaces:

1. ``session.as_completed(queries)`` streams :class:`BatchItem`s in
   completion order — a consumer can act on the first plan set while the
   rest of the workload is still optimizing.
2. ``session.submit(query)`` returns a future for one query.
3. A second session optimizes under the ``"approx"`` scenario
   (time vs. precision loss) resolved through the scenario registry —
   no cloud-specific glue anywhere.

Run with::

    python examples/streaming_service.py [--workers 4]
"""

import argparse
import time

from repro import QueryGenerator
from repro.api import OptimizerSession, available_scenarios
from repro.plans import one_line


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = in-process serial)")
    args = parser.parse_args()

    queries = [QueryGenerator(seed=s).generate(num_tables=3, shape=shape,
                                               num_params=1)
               for s, shape in enumerate(("chain", "star", "chain",
                                          "star"))]

    print(f"Registered scenarios: {', '.join(available_scenarios())}\n")

    with OptimizerSession("cloud", workers=args.workers) as session:
        print(f"Streaming {len(queries)} queries "
              f"(workers={args.workers}):")
        started = time.perf_counter()
        for item in session.as_completed(queries):
            elapsed = time.perf_counter() - started
            plan, cost = item.plan_set.select([0.4], {"time": 1.0,
                                                      "fees": 0.5})
            print(f"  +{elapsed:6.2f}s  #{item.index} [{item.status}] "
                  f"{len(item.plan_set.entries)} Pareto plans; "
                  f"time={cost['time']:.4f}h fees=${cost['fees']:.4f}")

        # Async single-query submission: the future resolves to an item.
        future = session.submit(queries[0])
        item = future.result()
        print(f"\nsubmit() future resolved: [{item.status}] "
              f"{one_line(item.plan_set.select([0.4], {'time': 1.0})[0])}")
        print(f"Pool spawns this session: {session.pool_spawns} "
              f"(the pool persists across calls)")

    # Same session API, different cost-model workload: one registry name.
    with OptimizerSession("approx", workers=0) as session:
        item = session.optimize(queries[0])
        plan, cost = item.plan_set.select(
            [0.5], {"time": 1.0, "precision_loss": 0.2})
        print(f"\napprox scenario: [{item.status}] "
              f"time={cost['time']:.4f}h "
              f"precision_loss={cost['precision_loss']:.2f} "
              f"{one_line(plan)}")


if __name__ == "__main__":
    main()
