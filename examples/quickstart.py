"""Quickstart: optimize a random query and pick plans at run time.

Demonstrates the end-to-end MPQ workflow of Figure 2 in the paper:

1. *Preprocessing time*: PWL-RRPA computes a Pareto plan set covering all
   parameter values (predicate selectivities unknown until run time).
2. *Run time*: concrete selectivities arrive; a plan is selected from the
   precomputed set according to user preferences — no optimizer call.

Run with::

    python examples/quickstart.py
"""

from repro import PlanSelector, QueryGenerator
from repro.api import optimize_query
from repro.plans import one_line, render_plan


def main() -> None:
    # A random 4-table chain query; the selectivity of one equality
    # predicate is unknown at optimization time (parameter x0 in [0, 1]).
    query = QueryGenerator(seed=7).generate(num_tables=4, shape="chain",
                                            num_params=1)
    print(f"Query: {query.num_tables} tables, "
          f"{len(query.join_predicates)} join predicates, "
          f"{query.num_params} parameter(s)\n")

    # Preprocessing: compute the Pareto plan set once.
    result = optimize_query(query, "cloud", resolution=2)
    stats = result.stats
    print(f"PWL-RRPA finished in {stats.optimization_seconds:.2f}s: "
          f"{len(result.entries)} Pareto plans "
          f"({stats.plans_created} plans generated, "
          f"{stats.lps_solved} LPs solved)")
    # The LP substrate's own accounting: wall time inside LP backends
    # and, when miss groups were wide enough to stack, the stacked
    # simplex kernel's lockstep counters.
    print(f"LP substrate: {stats.lp_seconds:.2f}s in backends, "
          f"{stats.batch_lp_solves} LPs stacked over "
          f"{stats.batch_lp_rounds} lockstep rounds "
          f"(occupancy {stats.batch_lp_occupancy:.2f}, "
          f"{stats.batch_lp_fallbacks} fallbacks)")
    # The deferred futures queue feeding the stacked kernel: how many
    # LPs were deferred instead of solved eagerly, what triggered their
    # flushes, and the median group size the kernel actually saw — the
    # number the CI perf gate holds at or above the stacking crossover
    # (see docs/counters.md for how to read these).
    print(f"Deferred queue: {stats.lp_queue_enqueued} LPs enqueued, "
          f"flushes size/demand/explicit="
          f"{stats.lp_queue_flush_size}/{stats.lp_queue_flush_demand}"
          f"/{stats.lp_queue_flush_explicit}, "
          f"median stacked-group size "
          f"{stats.lp_median_stacked_group_size:g}\n")

    # Run time: a user submits the query with a concrete predicate value
    # whose selectivity turns out to be 0.3.
    selector = PlanSelector(result)
    x = [0.3]

    print(f"Pareto frontier at selectivity {x[0]}:")
    for plan, cost in sorted(selector.frontier(x),
                             key=lambda pc: pc[1]["time"]):
        print(f"  time={cost['time']:.4f}h fees=${cost['fees']:.4f}  "
              f"{one_line(plan)}")

    fastest = selector.by_weighted_sum(x, {"time": 1.0})
    cheapest = selector.by_weighted_sum(x, {"fees": 1.0})
    balanced = selector.by_weighted_sum(x, {"time": 1.0, "fees": 1.0})
    print(f"\nFastest plan:  {one_line(fastest.plan)}")
    print(f"Cheapest plan: {one_line(cheapest.plan)}")
    print(f"Balanced plan: {one_line(balanced.plan)}")

    print("\nBalanced plan, operator tree:")
    print(render_plan(balanced.plan))


if __name__ == "__main__":
    main()
