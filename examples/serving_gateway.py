"""Serving gateway tour: shards, tenants, streaming, deadlines, metrics.

Boots a 2-shard :mod:`repro.serve` gateway in-process and walks the
serving story end to end over real HTTP:

1. a tenant-budgeted request — and what a 429 with ``Retry-After``
   looks like once the tenant's token bucket runs dry;
2. signature-affine routing — the same query always lands on the same
   shard, so the repeat is a warm-start cache hit;
3. live NDJSON streaming — progress events with successively tighter
   ``(1 + α)ⁿ`` guarantees, each ``rung_completed`` carrying a
   servable plan set;
4. a deadline-bounded request returning a guaranteed *partial* instead
   of an error;
5. the ``/metrics`` counters endpoint.

Run with::

    python examples/serving_gateway.py
"""

from repro import QueryGenerator
from repro.api import (GatewayClient, GatewayConfig, decode_plan_set,
                       launch_gateway)


def main() -> None:
    queries = [QueryGenerator(seed=s).generate(num_tables=4,
                                               shape="chain",
                                               num_params=1)
               for s in range(3)]

    config = GatewayConfig(shards=2, tenant_rate=0.05, tenant_burst=3)
    with launch_gateway(config) as handle:
        print(f"Gateway up at {handle.url} "
              f"({config.shards} shards)\n")
        client = GatewayClient(handle.host, handle.port)

        # 1. Tenant-budgeted requests: 3 tokens of burst, then 429.
        print("Tenant budget (burst=3, refill 0.05/s):")
        for attempt in range(4):
            response = client.optimize(queries[attempt % 2],
                                       tenant="team-a")
            if response.ok:
                doc = response.doc
                print(f"  request {attempt + 1}: [{doc['status']}] "
                      f"shard {doc['shard']}, {doc.get('plans', 0)} "
                      f"Pareto plans in {doc['seconds']:.2f}s")
            else:
                print(f"  request {attempt + 1}: HTTP "
                      f"{response.status_code}, retry after "
                      f"{response.retry_after:.1f}s")

        # 2. Signature routing: the repeat of queries[0] above was a
        # cache hit on the shard that first optimized it.

        # 3. Live NDJSON streaming under a different tenant.
        print("\nStreaming refinement (tenant team-b):")
        for line in client.stream_optimize(queries[2], tenant="team-b"):
            if line["kind"] == "rung_completed":
                plan_set = decode_plan_set(line["plan_set"])
                print(f"  alpha={line['alpha']:<4g} guarantee="
                      f"{line['guarantee']:6.2f}x  "
                      f"{len(plan_set.entries)} plans servable")
            elif line["kind"] == "done":
                print(f"  done: [{line['status']}] final guarantee "
                      f"{line.get('guarantee', 1.0):.2f}x")

        # 4. A deadline returns the best guaranteed partial, not a 500.
        fresh = QueryGenerator(seed=9).generate(num_tables=5,
                                                shape="chain",
                                                num_params=1)
        response = client.optimize(fresh, tenant="team-b",
                                   budget={"lps": 150})
        doc = response.doc
        print(f"\nDeadline-bounded fresh query: HTTP "
              f"{response.status_code} [{doc['status']}] "
              f"alpha={doc['alpha']:g} "
              f"guarantee={doc['guarantee']:.2f}x")

        # 5. The counters endpoint.
        metrics = client.metrics()
        totals = metrics["totals"]
        routing = metrics["routing"]
        print("\n/metrics counters:")
        print(f"  admitted={totals['admitted']} "
              f"completed={totals['completed']} "
              f"rejected_rate={totals['rejected_rate']} "
              f"deadline_partials={totals['deadline_partials']}")
        print(f"  routing: sticky_hits={routing['sticky_hits']} "
              f"shard_hits={routing['shard_hits']}")
        for name, tenant in metrics["tenants"].items():
            print(f"  tenant {name}: admitted={tenant['admitted']} "
                  f"rejected={tenant['rejected_rate']}")


if __name__ == "__main__":
    main()
