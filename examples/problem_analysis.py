"""Section 4 analysis: why PQ algorithms break for MPQ (Figures 4–6).

Constructs the paper's three counter-examples and shows, per sampled
parameter value, which plans are Pareto-optimal — making statements M1,
M2, M3a and M3b of Table 1 visible in the terminal.

Run with::

    python examples/problem_analysis.py
"""

import numpy as np

from repro.analysis import figure4, figure5, figure6, pareto_plans_at


def show_1d(example, x_max: float) -> None:
    print(f"\n--- {example.name}: {example.statement} ---")
    xs = np.linspace(0.0, x_max, 13)
    labels = sorted(example.plans)
    header = "  x:      " + " ".join(f"{x:5.2f}" for x in xs)
    print(header)
    for label in labels:
        row = []
        for x in xs:
            row.append("  X  " if label in pareto_plans_at(example, [x])
                       else "  .  ")
        print(f"  {label}: " + " ".join(row))


def show_figure5(example) -> None:
    print(f"\n--- {example.name}: {example.statement} ---")
    xs = np.linspace(0.0, 2.0, 21)
    print("  Map of plan 2's Pareto region ('2' = Pareto-optimal there);")
    print("  the L-shaped region is visibly non-convex:")
    for x2 in reversed(xs):
        row = ""
        for x1 in xs:
            row += "2" if "plan2" in pareto_plans_at(example,
                                                     [x1, x2]) else "."
        print(f"  x2={x2:4.1f} |{row}|")


def main() -> None:
    print("Reproducing the counter-examples of Section 4 / Table 1.")

    ex4 = figure4()
    show_1d(ex4, x_max=3.0)
    print("  -> plan2 is Pareto-optimal near x=0 and x=3 but NOT in the")
    print("     middle: M1 and M3a hold (S1/S3 fail for MPQ).")

    ex5 = figure5()
    show_figure5(ex5)

    ex6 = figure6()
    show_1d(ex6, x_max=2.0)
    print("  -> plan3 is Pareto-optimal strictly inside the interval but")
    print("     at NEITHER endpoint: M3b holds — vertex-based parameter-")
    print("     space decomposition (Hulgeri & Sudarshan) cannot work.")


if __name__ == "__main__":
    main()
