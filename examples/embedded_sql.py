"""Scenario 2: embedded SQL with approximate query processing.

The paper's second scenario (Section 1): all relevant plans for an
embedded query template are precomputed; at run time the application picks
a plan based on concrete parameter values *and* a policy trading execution
time against result precision — e.g. a dashboard accepts 10% samples under
load, a billing report requires exact results.

Metrics: ``time`` (sum-accumulated) and ``precision_loss``
(max-accumulated — the least precise input bounds the result), exercising
the non-additive accumulation of Algorithm 3.

Run with::

    python examples/embedded_sql.py
"""

from repro import PlanSelector, PWLRRPA, QueryGenerator
from repro.approx import ApproxCostModel
from repro.errors import OptimizationError
from repro.plans import one_line


def main() -> None:
    query = QueryGenerator(seed=5).generate(num_tables=3, shape="chain",
                                            num_params=1)
    print(f"Embedded query template: {query.num_tables} tables, "
          f"{query.num_params} run-time parameter(s)\n")

    optimizer = PWLRRPA(
        cost_model_factory=lambda q: ApproxCostModel(q, resolution=2))
    result = optimizer.optimize(query)
    print(f"Precomputed {len(result.entries)} Pareto plans "
          f"({result.stats.plans_created} generated, "
          f"{result.stats.lps_solved} LPs)\n")

    selector = PlanSelector(result)
    x = [0.4]  # run-time selectivity of the parameterized predicate

    print(f"Time / precision frontier at selectivity {x[0]}:")
    for plan, cost in sorted(selector.frontier(x),
                             key=lambda pc: pc[1]["time"]):
        precision = 1.0 - cost["precision_loss"]
        print(f"  time={cost['time']:.5f}h precision={precision:.0%}  "
              f"{one_line(plan)}")

    # Policy 1: interactive dashboard — fastest plan with >= 50% precision.
    dashboard = selector.by_bounded_metric(
        x, minimize="time", bounds={"precision_loss": 0.5})
    print(f"\nDashboard policy (precision >= 50%): "
          f"{one_line(dashboard.plan)} "
          f"(time {dashboard.cost['time']:.5f}h)")

    # Policy 2: billing report — exact results only.
    try:
        billing = selector.by_bounded_metric(
            x, minimize="time", bounds={"precision_loss": 0.0})
        print(f"Billing policy (exact results):    "
              f"{one_line(billing.plan)} "
              f"(time {billing.cost['time']:.5f}h)")
    except OptimizationError as exc:
        print(f"Billing policy: {exc}")

    # Policy 3: overload — cheapest time whatever the precision.
    overload = selector.by_weighted_sum(x, {"time": 1.0})
    print(f"Overload policy (fastest):         "
          f"{one_line(overload.plan)} "
          f"(time {overload.cost['time']:.5f}h, precision "
          f"{1 - overload.cost['precision_loss']:.0%})")


if __name__ == "__main__":
    main()
